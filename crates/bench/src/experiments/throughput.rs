//! (infrastructure) Streaming decode throughput: persistent pool vs
//! spawn-per-call, frames/sec vs thread count.
//!
//! PR 8 left the single warm decode nearly kernel-bound, so the
//! remaining lever is *throughput*: how fast a session chews through a
//! multi-frame tiled stream. This experiment measures exactly the thing
//! the persistent [`WorkerPool`](tepics_util::pool::WorkerPool) was
//! built to fix — per-frame thread spawns and cold per-tile workspaces
//! — with a same-window A/B between the two execution engines of
//! [`DecodeExecutor`]:
//!
//! * **Pooled** (default): long-lived workers with sticky per-geometry
//!   solver workspaces; tile groups of several frames pipeline through
//!   one map per push.
//! * **SpawnPerCall**: the pre-pool behavior — fresh scoped threads and
//!   fresh workspaces per frame — kept alive precisely as this
//!   benchmark's baseline.
//!
//! Three numbers land in `BENCH_throughput.json` per thread count:
//! frames/sec for each engine, their ratio, and the *thread spawns per
//! decoded frame* measured from the process-wide spawn counter (pooled
//! must be 0 after [`DecodeSession::prewarm`]; spawn-per-call pays
//! `threads − 1` per frame). Every decode is checked bit-identical to
//! the serial reference before its timing counts.
//!
//! Honesty: the acceptance gate (pooled ≥ 1.5× spawn-per-call at 4
//! threads) is only *applicable* on a multi-core host — the JSON
//! records `available_parallelism` and flags the gate `"applicable":
//! false` on a 1-core machine instead of pretending the flat curve
//! means something.

use std::time::Instant;

use crate::report::{section, Table};
use tepics_core::prelude::*;
use tepics_util::parallel::thread_spawn_count;

/// Where the machine-readable numbers land (workspace root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");

/// Builds the benchmark stream: `frames` captures of a `side`×`side`
/// tiled imager, returning the wire bytes, one tile record (for
/// prewarming decode executors), and the tile count per frame.
fn make_stream(
    side: usize,
    tile: usize,
    overlap: usize,
    frames: usize,
) -> (Vec<u8>, CompressedFrame, usize) {
    let imager = CompressiveImager::builder_for(FrameGeometry::new(side, side))
        .tiling(TileConfig::new(tile).overlap(overlap))
        .ratio(0.35)
        .seed(0x7480)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("throughput imager config");
    let tiles = imager.tile_layout().expect("layout").tiles();
    let mut enc = EncodeSession::new(imager).expect("throughput encode");
    let mut warm_record = None;
    for i in 0..frames {
        let scene = Scene::natural_like().render(side, side, 7 + i as u64);
        let records = enc.capture(&scene).expect("throughput capture");
        if warm_record.is_none() {
            warm_record = Some(records[0].clone());
        }
    }
    (
        enc.to_bytes(),
        warm_record.expect("at least one frame"),
        tiles,
    )
}

/// One timed decode of the whole stream in a single push (so complete
/// tile groups of every frame are buffered together and — on the
/// pooled engine — pipeline through one map). Returns the decoded
/// frames, wall seconds, and the thread-spawn delta of the run.
fn timed_decode(
    bytes: &[u8],
    cache: &std::sync::Arc<OperatorCache>,
    threads: usize,
    executor: DecodeExecutor,
    warm: &CompressedFrame,
) -> (Vec<DecodedFrame>, f64, u64) {
    let mut dec = DecodeSession::with_cache(cache.clone());
    dec.params(RecoveryParams::low_latency())
        .threads(threads)
        .executor(executor);
    dec.prewarm(warm).expect("throughput prewarm");
    let spawns_before = thread_spawn_count();
    let t = Instant::now();
    let decoded = dec.push_bytes(bytes).expect("throughput decode");
    let seconds = t.elapsed().as_secs_f64();
    (decoded, seconds, thread_spawn_count() - spawns_before)
}

/// One thread count's A/B measurement.
struct Point {
    threads: usize,
    pooled_seconds: f64,
    pooled_spawns_per_frame: f64,
    spawn_seconds: f64,
    spawn_spawns_per_frame: f64,
    identical: bool,
}

/// Runs the experiment: a `frames`-frame 512×512 tiled stream decoded
/// at several thread counts, each engine timed in the same window
/// (interleaved reps, best-of), updating `BENCH_throughput.json`.
pub fn run() -> String {
    run_sized(512, 64, 8, 3, &[1, 2, 4], 2)
}

#[allow(clippy::too_many_lines)]
fn run_sized(
    side: usize,
    tile: usize,
    overlap: usize,
    frames: usize,
    thread_counts: &[usize],
    reps: usize,
) -> String {
    let (bytes, warm, tiles) = make_stream(side, tile, overlap, frames);
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let gate_applicable = host_parallelism > 1;
    let cache = OperatorCache::shared();

    // Serial reference for bit-identity (threads 1 ⇒ inline on the
    // session workspace); also warms the shared operator cache so
    // every timed run below is operator-warm.
    let (reference, _, _) = timed_decode(&bytes, &cache, 1, DecodeExecutor::Pooled, &warm);
    assert_eq!(reference.len(), frames, "stream must decode all frames");

    let mut points = Vec::new();
    for &threads in thread_counts {
        let mut pooled_best = f64::INFINITY;
        let mut spawn_best = f64::INFINITY;
        let mut pooled_spawns = 0;
        let mut spawn_spawns = 0;
        let mut identical = true;
        // Same-window A/B: the engines alternate inside one loop, so
        // thermal/load drift hits both equally (PR 8 methodology).
        for _ in 0..reps {
            let (frames_p, secs_p, spawns_p) =
                timed_decode(&bytes, &cache, threads, DecodeExecutor::Pooled, &warm);
            let (frames_s, secs_s, spawns_s) =
                timed_decode(&bytes, &cache, threads, DecodeExecutor::SpawnPerCall, &warm);
            identical &= frames_p == reference && frames_s == reference;
            pooled_best = pooled_best.min(secs_p);
            spawn_best = spawn_best.min(secs_s);
            // Spawn deltas of the *last* rep: by then the pool is warm,
            // so pooled must read 0 even on the first thread count.
            pooled_spawns = spawns_p;
            spawn_spawns = spawns_s;
        }
        points.push(Point {
            threads,
            pooled_seconds: pooled_best,
            pooled_spawns_per_frame: pooled_spawns as f64 / frames as f64,
            spawn_seconds: spawn_best,
            spawn_spawns_per_frame: spawn_spawns as f64 / frames as f64,
            identical,
        });
    }

    // Machine-readable trail.
    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {host_parallelism},\n  \"stream\": {{\"side\": {side}, \
         \"tile\": {tile}, \"overlap\": {overlap}, \"tiles_per_frame\": {tiles}, \
         \"frames\": {frames}, \"solver\": \"amp-60 (low_latency, no debias)\"}},\n  \"points\": ["
    ));
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "{{\"threads\": {}, \"pooled_seconds\": {:.3}, \"pooled_frames_per_sec\": {:.3}, \
             \"pooled_tiles_per_sec\": {:.1}, \"pooled_spawns_per_frame\": {:.2}, \
             \"spawn_seconds\": {:.3}, \"spawn_frames_per_sec\": {:.3}, \
             \"spawn_spawns_per_frame\": {:.2}, \"speedup_pooled_vs_spawn\": {:.3}, \
             \"bit_identical\": {}}}",
            p.threads,
            p.pooled_seconds,
            frames as f64 / p.pooled_seconds,
            (frames * tiles) as f64 / p.pooled_seconds,
            p.pooled_spawns_per_frame,
            p.spawn_seconds,
            frames as f64 / p.spawn_seconds,
            p.spawn_spawns_per_frame,
            p.spawn_seconds / p.pooled_seconds,
            p.identical,
        ));
    }
    let gate_point = points.iter().find(|p| p.threads == 4).or(points.last());
    let gate_measured = gate_point.map_or(0.0, |p| p.spawn_seconds / p.pooled_seconds);
    json.push_str(&format!(
        "],\n  \"gate\": {{\"required_speedup_at_4_threads\": 1.5, \"measured\": {gate_measured:.3}, \
         \"applicable\": {gate_applicable}, \"note\": \"{}\"}}\n}}\n",
        if gate_applicable {
            "pooled vs spawn-per-call, same window"
        } else {
            "host has 1 core: engine overheads are measurable but a parallel speedup is not"
        },
    ));
    let json_written = std::fs::write(JSON_PATH, &json).is_ok();

    // Human-readable report.
    let mut out = String::from("# Streaming decode throughput — pooled vs spawn-per-call\n");
    out.push_str(&section(&format!(
        "{side}×{side}, tile {tile}, overlap {overlap} — {tiles} tiles × {frames} frames, \
         AMP-60, one push (frame-pipelined)"
    )));
    let mut t = Table::new(&[
        "threads",
        "pooled fps",
        "spawn fps",
        "pooled/spawn",
        "pool spawns/frame",
        "scoped spawns/frame",
        "bit-identical",
    ]);
    for p in &points {
        t.row_owned(vec![
            p.threads.to_string(),
            format!("{:.3}", frames as f64 / p.pooled_seconds),
            format!("{:.3}", frames as f64 / p.spawn_seconds),
            format!("{:.2}×", p.spawn_seconds / p.pooled_seconds),
            format!("{:.1}", p.pooled_spawns_per_frame),
            format!("{:.1}", p.spawn_spawns_per_frame),
            if p.identical {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nhost parallelism: {host_parallelism}; acceptance gate (≥1.5× at 4 threads): \
         measured {gate_measured:.2}×, {}\n",
        if gate_applicable {
            "applicable"
        } else {
            "NOT APPLICABLE on a 1-core host (recorded as such in the JSON)"
        },
    ));
    out.push_str(
        "\nthe `pool spawns/frame` column is the proof of amortization: after\n\
         `prewarm`, a pooled stream decode spawns zero threads per frame, while\n\
         the spawn-per-call engine pays its worker count again on every frame.\n",
    );
    out.push_str(&format!(
        "\n{} {JSON_PATH}\n",
        if json_written {
            "machine-readable numbers written to"
        } else {
            "WARNING: could not write"
        },
    ));
    out
}

/// Smoke-mode pool gate for CI: a small multi-frame tiled stream must
/// decode bit-identically through `threads(4)` pooled, spawn-per-call,
/// and serial paths — and the warm pooled decode must spawn zero
/// threads.
pub fn smoke() -> Result<String, Vec<String>> {
    let mut failures = Vec::new();
    let (bytes, warm, tiles) = make_stream(40, 16, 4, 3);
    let cache = OperatorCache::shared();

    let decode = |threads: usize, executor: DecodeExecutor| {
        let mut dec = DecodeSession::with_cache(cache.clone());
        dec.threads(threads).executor(executor);
        dec.prewarm(&warm).expect("smoke prewarm");
        let decoded = dec.push_bytes(&bytes).expect("smoke pool decode");
        (decoded, dec.report())
    };

    let (serial, _) = decode(1, DecodeExecutor::Pooled);
    if serial.len() != 3 {
        failures.push(format!("pool smoke: {} frames, expected 3", serial.len()));
    }

    // Warm-up pass spawns whatever workers the host allows; the decode
    // after it must spawn nothing.
    let _ = decode(4, DecodeExecutor::Pooled);
    let spawns_before = thread_spawn_count();
    let (pooled, report) = decode(4, DecodeExecutor::Pooled);
    let spawn_delta = thread_spawn_count() - spawns_before;
    if spawn_delta != 0 {
        failures.push(format!(
            "pool smoke: warm pooled decode spawned {spawn_delta} threads, expected 0"
        ));
    }
    if pooled != serial {
        failures.push("pool smoke: threads(4) pooled decode diverged from serial".into());
    }
    if report.frames_recovered != 3 {
        failures.push(format!(
            "pool smoke: report counted {} recovered frames, expected 3",
            report.frames_recovered
        ));
    }

    let (spawned, _) = decode(4, DecodeExecutor::SpawnPerCall);
    if spawned != serial {
        failures.push("pool smoke: spawn-per-call decode diverged from serial".into());
    }

    if failures.is_empty() {
        Ok(format!(
            "pool smoke: 3-frame 40×28 stream in {tiles} tiles/frame, threads(4) pooled ≡ \
             spawn-per-call ≡ serial, 0 spawns after warmup"
        ))
    } else {
        Err(failures)
    }
}
