//! Experiment runner: regenerates the paper's tables, figures and
//! numeric claims.
//!
//! ```text
//! experiments               # list available experiments
//! experiments all           # run everything
//! experiments table2 lsb    # run a subset
//! experiments all --out results.md
//! ```

use std::io::Write as _;
use tepics_bench::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = registry();
    let mut out_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            out_path = it.next();
            if out_path.is_none() {
                eprintln!("--out requires a path");
                std::process::exit(2);
            }
        } else {
            ids.push(arg);
        }
    }

    if ids.is_empty() {
        println!("usage: experiments <id>... | all [--out <path>]\n\navailable experiments:");
        for e in &registry {
            println!("  {:<12} {}", e.id, e.artifact);
        }
        return;
    }

    let run_all = ids.iter().any(|i| i == "all");
    let selected: Vec<_> = registry
        .iter()
        .filter(|e| run_all || ids.iter().any(|i| i == e.id))
        .collect();
    if selected.is_empty() {
        eprintln!("no matching experiments; run without arguments to list ids");
        std::process::exit(2);
    }
    for id in ids.iter().filter(|i| *i != "all") {
        if !registry.iter().any(|e| e.id == *id) {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        }
    }

    let mut combined = String::new();
    for e in selected {
        eprintln!(">>> running {} — {}", e.id, e.artifact);
        let started = std::time::Instant::now();
        let report = (e.run)();
        eprintln!("    done in {:.1}s", started.elapsed().as_secs_f64());
        println!("{report}");
        println!("{}", "=".repeat(78));
        combined.push_str(&report);
        combined.push_str("\n\n");
    }
    if let Some(path) = out_path {
        let mut file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        file.write_all(combined.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("combined report written to {path}");
    }
}
