//! Experiment runner: regenerates the paper's tables, figures and
//! numeric claims.
//!
//! ```text
//! experiments               # list available experiments
//! experiments all           # run the fast tier
//! experiments all --full    # include the slow full-size sweeps (nightly)
//! experiments table2 lsb    # run a subset (named ids always run)
//! experiments all --out results.md
//! experiments --smoke       # tiny end-to-end batch; exit 1 on regression
//! ```

// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use std::io::Write as _;
use tepics_bench::{registry, Tier};

/// CI smoke: a tiny 16×16 batch through the full capture→wire→recover
/// pipeline on the parallel batch engine. Fails loudly (non-zero exit)
/// if reconstruction quality, wire saving, or cross-thread determinism
/// regress — so pipeline breakage fails CI even when no unit test
/// covers it.
fn smoke() {
    use tepics_core::batch::BatchRunner;
    use tepics_core::prelude::*;

    let side = 16;
    let imager = CompressiveImager::builder(side, side)
        .ratio(0.35)
        .seed(42)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("smoke imager config");
    let scenes: Vec<ImageF64> = (0..8)
        .map(|i| Scene::gaussian_blobs(3).render(side, side, i))
        .collect();

    let serial = BatchRunner::with_threads(1)
        .run(&imager, &scenes)
        .expect("smoke batch (1 thread)");
    let parallel = BatchRunner::new()
        .run(&imager, &scenes)
        .expect("smoke batch (N threads)");
    let summary = parallel.summary();
    eprintln!(
        "smoke: {} frames, mean PSNR {:.1} dB (min {:.1}), wire saving {:.1}%, {:.1} frames/s",
        summary.frames,
        summary.mean_psnr_db,
        summary.min_psnr_db,
        summary.wire_saving() * 100.0,
        summary.frames_per_sec,
    );
    let mut failures = Vec::new();
    // Fast tidy pass: the workspace invariant linter (alloc-free
    // regions, determinism, panic-freedom, meta-lints) must stay clean.
    // It scans ~100 source files in milliseconds, so it rides in the
    // smoke tier; skipped with a note when the sources are not present
    // (e.g. an installed binary run outside the repo).
    let tidy_root = std::env::current_dir()
        .ok()
        .and_then(|d| tepics_tidy::find_workspace_root(&d));
    match tidy_root {
        Some(root) => match tepics_tidy::run_workspace(&root, &[]) {
            Ok(report) if report.is_clean() => eprintln!(
                "smoke: tidy OK ({} files across {} crates)",
                report.files_scanned,
                report.crates_scanned.len()
            ),
            Ok(report) => {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                failures.push(format!("tidy found {} violations", report.violations.len()));
            }
            Err(e) => failures.push(format!("tidy scan failed: {e}")),
        },
        None => eprintln!("smoke: tidy skipped (no workspace root above cwd)"),
    }
    if serial.reports != parallel.reports {
        failures.push("parallel batch reports differ from serial".to_string());
    }
    if summary.mean_psnr_db < 15.0 {
        failures.push(format!("mean PSNR {:.1} dB < 15.0", summary.mean_psnr_db));
    }
    if summary.min_psnr_db < 10.0 {
        failures.push(format!("min PSNR {:.1} dB < 10.0", summary.min_psnr_db));
    }
    if summary.wire_saving() <= 0.0 {
        failures.push(format!(
            "wire saving {:.3} not positive",
            summary.wire_saving()
        ));
    }
    // Session stream path: the same scenes as one contiguous wire
    // stream, decoded incrementally with a shared operator cache.
    let mut enc = EncodeSession::new(imager.clone()).expect("smoke encode session");
    let mut frame_codec_bits = 0usize;
    for scene in &scenes {
        let records = enc.capture(scene).expect("smoke stream capture");
        frame_codec_bits += records.iter().map(|f| f.wire_bits()).sum::<usize>();
    }
    let mut dec = DecodeSession::new();
    let decoded = dec
        .push_bytes(&enc.to_bytes())
        .expect("smoke stream decode");
    if decoded.len() != scenes.len() {
        failures.push(format!(
            "stream decoded {} of {} frames",
            decoded.len(),
            scenes.len()
        ));
    }
    let stats = dec.cache().stats();
    if stats.misses != 1 || stats.hits != scenes.len() as u64 - 1 {
        failures.push(format!(
            "operator cache expected 1 miss / {} hits, saw {} / {}",
            scenes.len() - 1,
            stats.misses,
            stats.hits
        ));
    }
    if enc.wire_bits() >= frame_codec_bits {
        failures.push(format!(
            "stream container {} bits not smaller than {} bits of per-frame headers",
            enc.wire_bits(),
            frame_codec_bits
        ));
    }
    eprintln!(
        "smoke: stream {} frames in {} bits (frame codec {} bits), cache hit rate {:.0}%",
        decoded.len(),
        enc.wire_bits(),
        frame_codec_bits,
        stats.hit_rate() * 100.0
    );
    // Hot-path kernels (DCT, Φ apply/adjoint, warm decode) in smoke
    // mode: exercises the fast operator paths end to end on every PR.
    match tepics_bench::experiments::hotpaths::smoke() {
        Ok(summary) => eprintln!("{summary}"),
        Err(hotpath_failures) => failures.extend(hotpath_failures),
    }
    // Solver roster in smoke mode: every SolverKind decodes one frame
    // (warm ≡ cold asserted per solver), plus the greedy column-view
    // consistency contracts — so a solver-stack regression fails CI
    // even when no unit test covers it.
    match tepics_bench::experiments::solvers::smoke() {
        Ok(summary) => eprintln!("{summary}"),
        Err(solver_failures) => failures.extend(solver_failures),
    }
    // Tiled path in smoke mode: a non-square frame in shifted uniform
    // tiles — geometry-first capture, v2 wire records, stitched decode,
    // one Φ build across all tiles, serial ≡ threaded.
    match tepics_bench::experiments::tiled::smoke() {
        Ok(summary) => eprintln!("{summary}"),
        Err(tiled_failures) => failures.extend(tiled_failures),
    }
    // Resilient wire v3 in smoke mode: clean v3 decodes bit-identical
    // to v2, and a 0.1%-corrupted v3 stream still recovers ≥90% of its
    // frames — the graceful-degradation contract on every PR.
    match tepics_bench::experiments::resilience::smoke() {
        Ok(summary) => eprintln!("{summary}"),
        Err(resilience_failures) => failures.extend(resilience_failures),
    }
    // Persistent decode pool in smoke mode: a multi-frame tiled stream
    // through threads(4) pooled ≡ spawn-per-call ≡ serial, and the warm
    // pooled decode must spawn zero threads — the amortization contract
    // on every PR.
    match tepics_bench::experiments::throughput::smoke() {
        Ok(summary) => eprintln!("{summary}"),
        Err(pool_failures) => failures.extend(pool_failures),
    }
    if failures.is_empty() {
        eprintln!("smoke: OK");
    } else {
        for f in &failures {
            eprintln!("smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let registry = registry();
    let mut out_path: Option<String> = None;
    let mut full = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            out_path = it.next();
            if out_path.is_none() {
                eprintln!("--out requires a path");
                std::process::exit(2);
            }
        } else if arg == "--full" {
            full = true;
        } else {
            ids.push(arg);
        }
    }

    if ids.is_empty() {
        println!(
            "usage: experiments <id>... | all [--full] [--out <path>]\n\navailable experiments:"
        );
        for e in &registry {
            let tier = match e.tier {
                Tier::Fast => "",
                Tier::Full => " [full tier]",
            };
            println!("  {:<12} {}{tier}", e.id, e.artifact);
        }
        return;
    }

    let run_all = ids.iter().any(|i| i == "all");
    // `all` expands to the fast tier on PR lanes; `--full` (nightly)
    // pulls in the slow full-size sweeps. Explicitly named ids always
    // run, whatever their tier.
    let selected: Vec<_> = registry
        .iter()
        .filter(|e| (run_all && (full || e.tier == Tier::Fast)) || ids.iter().any(|i| i == e.id))
        .collect();
    if run_all && !full {
        let skipped: Vec<&str> = registry
            .iter()
            .filter(|e| e.tier == Tier::Full && !selected.iter().any(|s| s.id == e.id))
            .map(|e| e.id)
            .collect();
        if !skipped.is_empty() {
            eprintln!(
                "skipping full-tier sweeps (pass --full to include): {}",
                skipped.join(" ")
            );
        }
    }
    if selected.is_empty() {
        eprintln!("no matching experiments; run without arguments to list ids");
        std::process::exit(2);
    }
    for id in ids.iter().filter(|i| *i != "all") {
        if !registry.iter().any(|e| e.id == *id) {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        }
    }

    let mut combined = String::new();
    for e in selected {
        eprintln!(">>> running {} — {}", e.id, e.artifact);
        let started = std::time::Instant::now();
        let report = (e.run)();
        eprintln!("    done in {:.1}s", started.elapsed().as_secs_f64());
        println!("{report}");
        println!("{}", "=".repeat(78));
        combined.push_str(&report);
        combined.push_str("\n\n");
    }
    if let Some(path) = out_path {
        let mut file =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        file.write_all(combined.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("combined report written to {path}");
    }
}
