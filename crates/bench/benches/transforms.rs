//! Sparsifying-transform throughput: the decoder applies Ψ and Ψᵀ twice
//! per FISTA iteration, so these dominate reconstruction time together
//! with the measurement operator.

// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tepics_imaging::{Dct2d, Haar2d, Scene};

fn bench_dct(c: &mut Criterion) {
    let mut group = c.benchmark_group("dct2d");
    for side in [8usize, 32, 64] {
        let dct = Dct2d::new(side, side);
        let img = Scene::natural_like().render(side, side, 1);
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_with_input(BenchmarkId::new("forward", side), &side, |b, _| {
            b.iter(|| black_box(dct.forward(img.as_slice())));
        });
        let coeffs = dct.forward(img.as_slice());
        group.bench_with_input(BenchmarkId::new("inverse", side), &side, |b, _| {
            b.iter(|| black_box(dct.inverse(&coeffs)));
        });
    }
    group.finish();
}

fn bench_haar(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar2d");
    for side in [8usize, 32, 64] {
        let haar = Haar2d::new(side, side, Haar2d::max_levels(side, side));
        let img = Scene::piecewise_smooth(4).render(side, side, 1);
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_with_input(BenchmarkId::new("forward", side), &side, |b, _| {
            b.iter(|| black_box(haar.forward(img.as_slice())));
        });
        let coeffs = haar.forward(img.as_slice());
        group.bench_with_input(BenchmarkId::new("inverse", side), &side, |b, _| {
            b.iter(|| black_box(haar.inverse(&coeffs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dct, bench_haar);
criterion_main!(benches);
