//! End-to-end pipeline timing: capture → wire → decode at 32×32, plus
//! the block-based baseline, matching the configurations the `ffvb`
//! experiment sweeps.

// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tepics_core::prelude::*;

fn bench_full_frame(c: &mut Criterion) {
    let scene = Scene::gaussian_blobs(3).render(32, 32, 5);
    let imager = CompressiveImager::builder(32, 32)
        .ratio(0.3)
        .seed(1)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("pipeline_32x32_r030");
    group.sample_size(10);
    group.bench_function("capture", |b| {
        b.iter(|| black_box(imager.capture(&scene)));
    });
    let frame = imager.capture(&scene);
    let bytes = frame.to_bytes();
    group.bench_function("wire_decode", |b| {
        b.iter(|| black_box(CompressedFrame::from_bytes(&bytes).unwrap()));
    });
    group.bench_function("reconstruct_fista", |b| {
        b.iter(|| {
            let decoder = Decoder::for_frame(&frame).unwrap();
            black_box(decoder.reconstruct(&frame).unwrap())
        });
    });
    group.finish();
}

fn bench_block_baseline(c: &mut Criterion) {
    let scene = Scene::gaussian_blobs(3).render(32, 32, 5);
    let imager = CompressiveImager::builder(32, 32)
        .ratio(0.3)
        .seed(1)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let codes = imager.ideal_codes(&scene).to_code_f64();
    let bcs = BlockCs::new(32, 32, 8, 0.3, 1).unwrap();
    let bframe = bcs.capture(&codes);
    let mut group = c.benchmark_group("block_cs_32x32_r030");
    group.sample_size(10);
    group.bench_function("capture", |b| {
        b.iter(|| black_box(bcs.capture(&codes)));
    });
    group.bench_function("reconstruct", |b| {
        b.iter(|| black_box(bcs.reconstruct(&bframe).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_full_frame, bench_block_baseline);
criterion_main!(benches);
