//! Event-accurate sensor simulation throughput: one compressed-sample
//! slot (reset → fire → arbitrate → TDC) and whole-frame capture at the
//! paper's scale.

// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tepics_ca::{CaSource, ElementaryRule};
use tepics_imaging::Scene;
use tepics_sensor::{ColumnArbiter, Fidelity, FrameReadout, SensorConfig};
use tepics_util::SplitMix64;

fn bench_arbiter(c: &mut Criterion) {
    let config = SensorConfig::paper_prototype();
    let arbiter = ColumnArbiter::new(&config);
    let mut rng = SplitMix64::new(7);
    let pulses: Vec<(usize, f64)> = (0..32).map(|r| (r, rng.next_f64() * 10e-6)).collect();
    let mut group = c.benchmark_group("column_arbiter");
    group.throughput(Throughput::Elements(32));
    group.bench_function("arbitrate_32_pulses", |b| {
        b.iter(|| black_box(arbiter.arbitrate(&pulses)));
    });
    group.finish();
}

fn bench_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_capture_64x64");
    group.sample_size(10);
    let config = SensorConfig::paper_prototype();
    let scene = Scene::gaussian_blobs(4).render(64, 64, 3);
    for (name, fidelity) in [
        ("functional_100samples", Fidelity::Functional),
        ("event_accurate_100samples", Fidelity::EventAccurate),
    ] {
        group.bench_function(name, |b| {
            let readout = FrameReadout::new(config.clone(), fidelity);
            b.iter(|| {
                let mut src = CaSource::new(128, 7, ElementaryRule::RULE_30, 256, 1);
                black_box(readout.capture(&scene, &mut src, 100))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arbiter, bench_capture);
criterion_main!(benches);
