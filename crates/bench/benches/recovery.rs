//! Sparse-recovery solver throughput on a standardized Gaussian problem
//! (128 × 512, k = 12): the cross-solver comparison the decoder's
//! algorithm choice is based on.

// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tepics_cs::{DenseMatrix, LinearOperator};
use tepics_recovery::{CoSaMp, Fista, Iht, Omp};
use tepics_util::SplitMix64;

fn problem() -> (DenseMatrix, Vec<f64>) {
    let mut rng = SplitMix64::new(42);
    let a = DenseMatrix::from_fn(128, 512, |_, _| rng.next_gaussian() / 128f64.sqrt());
    let mut x = vec![0.0; 512];
    let mut placed = 0;
    while placed < 12 {
        let i = rng.next_below(512) as usize;
        if x[i] == 0.0 {
            x[i] = if rng.next_bool() { 1.5 } else { -1.5 };
            placed += 1;
        }
    }
    let y = a.apply_vec(&x);
    (a, y)
}

fn bench_solvers(c: &mut Criterion) {
    let (a, y) = problem();
    let mut group = c.benchmark_group("recovery_128x512_k12");
    group.sample_size(20);
    group.bench_function("fista_200it", |b| {
        b.iter(|| {
            black_box(
                Fista::new()
                    .lambda_ratio(0.02)
                    .max_iter(200)
                    .tol(0.0)
                    .solve(&a, &y)
                    .unwrap(),
            )
        });
    });
    group.bench_function("ista_200it", |b| {
        b.iter(|| {
            black_box(
                tepics_recovery::Ista::new()
                    .lambda_ratio(0.02)
                    .max_iter(200)
                    .tol(0.0)
                    .solve(&a, &y)
                    .unwrap(),
            )
        });
    });
    group.bench_function("omp_k12", |b| {
        b.iter(|| black_box(Omp::new(12).solve(&a, &y).unwrap()));
    });
    group.bench_function("cosamp_k12", |b| {
        b.iter(|| black_box(CoSaMp::new(12).solve(&a, &y).unwrap()));
    });
    group.bench_function("iht_k12", |b| {
        b.iter(|| black_box(Iht::new(12).max_iter(200).solve(&a, &y).unwrap()));
    });
    group.bench_function("amp", |b| {
        b.iter(|| black_box(tepics_recovery::Amp::new().solve(&a, &y).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
