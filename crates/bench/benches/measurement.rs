//! Measurement-operator throughput at the paper's scale: Φ and Φᵀ for
//! the XOR/CA ensemble (K = 1638 rows over 64×64 pixels) and the dense
//! baselines. These are the other half of each FISTA iteration.

// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tepics_ca::{CaSource, ElementaryRule};
use tepics_cs::measurement::{BlockDiagonalMeasurement, DenseBinaryMeasurement};
use tepics_cs::{LinearOperator, XorMeasurement};
use tepics_util::SplitMix64;

fn paper_scale_xor() -> XorMeasurement {
    let mut src = CaSource::new(128, 7, ElementaryRule::RULE_30, 256, 1);
    XorMeasurement::from_source(64, 64, &mut src, 1638)
}

fn bench_xor(c: &mut Criterion) {
    let phi = paper_scale_xor();
    let mut rng = SplitMix64::new(3);
    let x: Vec<f64> = (0..4096).map(|_| rng.next_f64() * 255.0).collect();
    let y: Vec<f64> = (0..1638).map(|_| rng.next_f64()).collect();
    let mut group = c.benchmark_group("xor_measurement_64x64_k1638");
    group.throughput(Throughput::Elements(1638 * 4096));
    group.bench_function("apply", |b| {
        let mut out = vec![0.0; 1638];
        b.iter(|| {
            phi.apply(&x, &mut out);
            black_box(out[0])
        });
    });
    group.bench_function("apply_adjoint", |b| {
        let mut out = vec![0.0; 4096];
        b.iter(|| {
            phi.apply_adjoint(&y, &mut out);
            black_box(out[0])
        });
    });
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    let phi = DenseBinaryMeasurement::bernoulli(1638, 4096, 5, 0.5);
    let mut rng = SplitMix64::new(4);
    let x: Vec<f64> = (0..4096).map(|_| rng.next_f64() * 255.0).collect();
    let mut group = c.benchmark_group("dense_binary_64x64_k1638");
    group.throughput(Throughput::Elements(1638 * 4096));
    group.bench_function("apply", |b| {
        let mut out = vec![0.0; 1638];
        b.iter(|| {
            phi.apply(&x, &mut out);
            black_box(out[0])
        });
    });
    group.finish();
}

fn bench_block(c: &mut Criterion) {
    // 64 blocks of 8×8 with 26 rows each ≈ the same total K.
    let phi = BlockDiagonalMeasurement::bernoulli(64, 64, 26, 9, 0.5);
    let mut rng = SplitMix64::new(5);
    let x: Vec<f64> = (0..4096).map(|_| rng.next_f64() * 255.0).collect();
    let mut group = c.benchmark_group("block_diagonal_8x8");
    group.throughput(Throughput::Elements(64 * 26 * 64));
    group.bench_function("apply", |b| {
        let mut out = vec![0.0; 64 * 26];
        b.iter(|| {
            phi.apply(&x, &mut out);
            black_box(out[0])
        });
    });
    group.finish();
}

criterion_group!(benches, bench_xor, bench_dense, bench_block);
criterion_main!(benches);
