//! Throughput of the pattern generators: the on-chip CA against LFSR
//! and Hadamard baselines. The chip needs one fresh 128-bit pattern per
//! 20 µs compressed-sample slot; these benches show the simulation has
//! orders of magnitude of headroom.

// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tepics_ca::{
    Automaton1D, BernoulliSource, BitPatternSource, Boundary, CaSource, ElementaryRule,
    HadamardSource, Lfsr, LfsrSource,
};

fn bench_ca_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ca_step");
    for cells in [128usize, 4096, 65_536] {
        group.throughput(Throughput::Elements(cells as u64));
        group.bench_with_input(BenchmarkId::new("rule30", cells), &cells, |b, &cells| {
            let mut ca =
                Automaton1D::from_seed(cells, 7, ElementaryRule::RULE_30, Boundary::Periodic);
            b.iter(|| {
                ca.step();
                black_box(ca.state().count_ones())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("rule110_generic", cells),
            &cells,
            |b, &cells| {
                let mut ca =
                    Automaton1D::from_seed(cells, 7, ElementaryRule::RULE_110, Boundary::Periodic);
                b.iter(|| {
                    ca.step();
                    black_box(ca.state().count_ones())
                });
            },
        );
    }
    group.finish();
}

fn bench_pattern_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_sources");
    let len = 128usize; // the prototype's M + N
    group.throughput(Throughput::Elements(len as u64));
    group.bench_function("ca_rule30", |b| {
        let mut src = CaSource::new(len, 1, ElementaryRule::RULE_30, 256, 1);
        b.iter(|| black_box(src.next_pattern()));
    });
    group.bench_function("lfsr16", |b| {
        let mut src = LfsrSource::new(len, 16, 0xACE1);
        b.iter(|| black_box(src.next_pattern()));
    });
    group.bench_function("hadamard", |b| {
        let mut src = HadamardSource::new(len, 3);
        b.iter(|| black_box(src.next_pattern()));
    });
    group.bench_function("bernoulli", |b| {
        let mut src = BernoulliSource::balanced(len, 9);
        b.iter(|| black_box(src.next_pattern()));
    });
    group.finish();
}

fn bench_lfsr_bits(c: &mut Criterion) {
    c.bench_function("lfsr32_kilobit", |b| {
        let mut lfsr = Lfsr::maximal(32, 0xDEADBEEF);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1024 {
                acc += lfsr.next_bit() as u32;
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_ca_step,
    bench_pattern_sources,
    bench_lfsr_bits
);
criterion_main!(benches);
