//! One-dimensional cellular automata with word-parallel stepping.
//!
//! [`Automaton1D`] models the ring of CA cells placed around the sensor
//! array (Fig. 2 of the paper): one cell per row plus one per column, all
//! updated synchronously each compressed-sample period. Stepping is
//! word-parallel — the 8 neighborhood minterms are evaluated with bitwise
//! operations on 64-cell words — which keeps multi-megacell benchmark
//! configurations fast while remaining exactly equivalent to the
//! per-cell reference implementation (tested below).

use crate::rule::ElementaryRule;
use tepics_util::BitVec;

/// Boundary condition of a 1-D automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Boundary {
    /// Cells form a ring; the paper's configuration (the CA surrounds the
    /// pixel array).
    Periodic,
    /// Cells beyond the edges read as a constant value.
    Fixed(bool),
}

/// A one-dimensional, binary, radius-1 cellular automaton.
///
/// # Examples
///
/// ```
/// use tepics_ca::{Automaton1D, Boundary, ElementaryRule};
///
/// let mut ca = Automaton1D::centered_one(11, ElementaryRule::RULE_30, Boundary::Periodic);
/// ca.step();
/// // Rule 30 from a single seed cell grows the famous triangle.
/// assert_eq!(ca.state().count_ones(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Automaton1D {
    state: BitVec,
    rule: ElementaryRule,
    boundary: Boundary,
    generation: u64,
}

impl Automaton1D {
    /// Creates an automaton with an explicit initial state.
    ///
    /// # Panics
    ///
    /// Panics if the state is empty.
    pub fn new(state: BitVec, rule: ElementaryRule, boundary: Boundary) -> Self {
        assert!(!state.is_empty(), "automaton needs at least one cell");
        Automaton1D {
            state,
            rule,
            boundary,
            generation: 0,
        }
    }

    /// Creates an automaton of `cells` cells, all zero except a single
    /// one at the center — the classic Rule-30 seed.
    pub fn centered_one(cells: usize, rule: ElementaryRule, boundary: Boundary) -> Self {
        let mut state = BitVec::zeros(cells);
        state.set(cells / 2, true);
        Automaton1D::new(state, rule, boundary)
    }

    /// Creates an automaton whose initial state is expanded
    /// deterministically from a 64-bit seed (SplitMix64 stream).
    ///
    /// This is the seeding used by the imager: the decoder reconstructs
    /// the identical strategy from the same 64-bit value.
    pub fn from_seed(cells: usize, seed: u64, rule: ElementaryRule, boundary: Boundary) -> Self {
        let mut rng = tepics_util::SplitMix64::new(seed);
        let words = (0..cells.div_ceil(64)).map(|_| rng.next_u64()).collect();
        Automaton1D::new(BitVec::from_words(cells, words), rule, boundary)
    }

    /// Current cell states.
    pub fn state(&self) -> &BitVec {
        &self.state
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// `true` if the automaton has no cells (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// The update rule.
    pub fn rule(&self) -> ElementaryRule {
        self.rule
    }

    /// The boundary condition.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Number of steps taken since construction.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances one generation (word-parallel).
    pub fn step(&mut self) {
        let l = self.neighbor_left();
        let r = self.neighbor_right();
        let s = &self.state;
        let n_words = s.as_words().len();
        let mut out = vec![0u64; n_words];
        let rule = self.rule.number();
        // Rule 30 fast path: NS = L ^ (S | R).
        if rule == 30 {
            for (j, o) in out.iter_mut().enumerate() {
                *o = l.as_words()[j] ^ (s.as_words()[j] | r.as_words()[j]);
            }
        } else {
            // Generic: OR of the minterms whose rule bit is set.
            for (j, o) in out.iter_mut().enumerate() {
                let (lw, sw, rw) = (l.as_words()[j], s.as_words()[j], r.as_words()[j]);
                let mut acc = 0u64;
                for idx in 0..8u8 {
                    if (rule >> idx) & 1 == 1 {
                        let a = if idx & 4 != 0 { lw } else { !lw };
                        let b = if idx & 2 != 0 { sw } else { !sw };
                        let c = if idx & 1 != 0 { rw } else { !rw };
                        acc |= a & b & c;
                    }
                }
                *o = acc;
            }
        }
        self.state = BitVec::from_words(self.state.len(), out);
        self.generation += 1;
    }

    /// Advances `n` generations.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Per-cell reference step used to validate the word-parallel path.
    /// Exposed for tests and for the gate-level cross-check experiment.
    pub fn step_reference(&mut self) {
        let len = self.state.len();
        let get = |i: isize| -> bool {
            if i < 0 || i as usize >= len {
                match self.boundary {
                    Boundary::Periodic => self.state.get(((i + len as isize) as usize) % len),
                    Boundary::Fixed(v) => v,
                }
            } else {
                self.state.get(i as usize)
            }
        };
        let next = BitVec::from_bools((0..len).map(|i| {
            let i = i as isize;
            self.rule.next(get(i - 1), get(i), get(i + 1))
        }));
        self.state = next;
        self.generation += 1;
    }

    /// Vector `L` with `L[i] = state[i-1]` under the boundary condition.
    fn neighbor_left(&self) -> BitVec {
        let len = self.state.len();
        let words = self.state.as_words();
        let mut out = vec![0u64; words.len()];
        for j in 0..words.len() {
            out[j] = words[j] << 1;
            if j > 0 {
                out[j] |= words[j - 1] >> 63;
            }
        }
        let mut bv = BitVec::from_words(len, out);
        let edge = match self.boundary {
            Boundary::Periodic => self.state.get(len - 1),
            Boundary::Fixed(v) => v,
        };
        bv.set(0, edge);
        bv
    }

    /// Vector `R` with `R[i] = state[i+1]` under the boundary condition.
    fn neighbor_right(&self) -> BitVec {
        let len = self.state.len();
        let words = self.state.as_words();
        let mut out = vec![0u64; words.len()];
        for j in 0..words.len() {
            out[j] = words[j] >> 1;
            if j + 1 < words.len() {
                out[j] |= words[j + 1] << 63;
            }
        }
        // Bit (len-1) currently holds either garbage from the next word
        // (none) or zero; fix it up per the boundary.
        let mut bv = BitVec::from_words(len, out);
        let edge = match self.boundary {
            Boundary::Periodic => self.state.get(0),
            Boundary::Fixed(v) => v,
        };
        bv.set(len - 1, edge);
        bv
    }

    /// Runs the automaton and collects `rows` successive states
    /// (including the current one) — the classic space–time diagram.
    pub fn space_time(&mut self, rows: usize) -> Vec<BitVec> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            out.push(self.state.clone());
            self.step();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_both(cells: usize, rule: u8, boundary: Boundary, steps: usize, seed: u64) {
        let init = Automaton1D::from_seed(cells, seed, ElementaryRule::new(rule), boundary);
        let mut fast = init.clone();
        let mut slow = init;
        for step in 0..steps {
            fast.step();
            slow.step_reference();
            assert_eq!(
                fast.state(),
                slow.state(),
                "rule {rule}, {cells} cells, boundary {boundary:?}, diverged at step {step}"
            );
        }
    }

    #[test]
    fn word_parallel_matches_reference_rule_30() {
        for cells in [1, 2, 3, 63, 64, 65, 128, 200] {
            run_both(cells, 30, Boundary::Periodic, 32, 0xC0FFEE);
            run_both(cells, 30, Boundary::Fixed(false), 32, 0xC0FFEE);
        }
    }

    #[test]
    fn word_parallel_matches_reference_many_rules() {
        for rule in [0u8, 1, 45, 54, 90, 110, 150, 184, 255] {
            run_both(100, rule, Boundary::Periodic, 16, 42);
            run_both(100, rule, Boundary::Fixed(true), 16, 42);
        }
    }

    #[test]
    fn rule_30_triangle_from_center_seed() {
        // Known first rows of rule 30 from a single centered 1
        // (infinite background; wide fixed-boundary array emulates it).
        let mut ca = Automaton1D::centered_one(21, ElementaryRule::RULE_30, Boundary::Fixed(false));
        let rows = ca.space_time(5);
        let render: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        assert_eq!(render[0], "000000000010000000000");
        assert_eq!(render[1], "000000000111000000000");
        assert_eq!(render[2], "000000001100100000000");
        assert_eq!(render[3], "000000011011110000000");
        assert_eq!(render[4], "000000110010001000000");
    }

    #[test]
    fn generation_counter_advances() {
        let mut ca = Automaton1D::centered_one(16, ElementaryRule::RULE_30, Boundary::Periodic);
        assert_eq!(ca.generation(), 0);
        ca.step_n(10);
        assert_eq!(ca.generation(), 10);
    }

    #[test]
    fn rule_0_clears_everything() {
        let mut ca = Automaton1D::from_seed(77, 1, ElementaryRule::new(0), Boundary::Periodic);
        ca.step();
        assert_eq!(ca.state().count_ones(), 0);
    }

    #[test]
    fn rule_204_is_identity() {
        // Rule 204 = S (each cell keeps its state).
        let mut ca = Automaton1D::from_seed(130, 99, ElementaryRule::new(204), Boundary::Periodic);
        let before = ca.state().clone();
        ca.step_n(5);
        assert_eq!(*ca.state(), before);
    }

    #[test]
    fn periodic_boundary_wraps() {
        // Rule 2: NS = 1 iff (L,S,R) = (0,0,1): a lone 1 moves left.
        let mut state = BitVec::zeros(8);
        state.set(0, true);
        let mut ca = Automaton1D::new(state, ElementaryRule::new(2), Boundary::Periodic);
        ca.step();
        assert!(ca.state().get(7), "the 1 must wrap to the last cell");
        assert_eq!(ca.state().count_ones(), 1);
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Automaton1D::from_seed(128, 7, ElementaryRule::RULE_30, Boundary::Periodic);
        let mut b = Automaton1D::from_seed(128, 7, ElementaryRule::RULE_30, Boundary::Periodic);
        a.step_n(100);
        b.step_n(100);
        assert_eq!(a.state(), b.state());
        let mut c = Automaton1D::from_seed(128, 8, ElementaryRule::RULE_30, Boundary::Periodic);
        c.step_n(100);
        assert_ne!(a.state(), c.state(), "different seeds should diverge");
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_automaton_panics() {
        Automaton1D::new(
            BitVec::zeros(0),
            ElementaryRule::RULE_30,
            Boundary::Periodic,
        );
    }
}
