//! The pattern-source abstraction consumed by the imager.
//!
//! Every compressed sample needs one fresh selection pattern of
//! `M + N` bits (rows ++ columns). [`BitPatternSource`] is the common
//! interface over the paper's cellular automaton and the baseline
//! generators (LFSR, Hadamard, software Bernoulli). Sources are
//! deterministic and [`BitPatternSource::reset`] restarts the stream, so
//! an encoder/decoder pair holding equal sources stays synchronized —
//! the property that lets the chip avoid transmitting Φ.

use crate::automaton::{Automaton1D, Boundary};
use crate::hadamard::HadamardRows;
use crate::lfsr::Lfsr;
use crate::rule::ElementaryRule;
use tepics_util::{BitVec, SplitMix64};

/// A deterministic, resettable stream of fixed-length bit patterns.
///
/// Implementations must yield the identical pattern sequence after
/// [`reset`](BitPatternSource::reset) — integration tests enforce this,
/// since decoder synchronization depends on it.
pub trait BitPatternSource {
    /// Number of bits in every pattern.
    fn pattern_len(&self) -> usize;

    /// Produces the next pattern in the stream.
    fn next_pattern(&mut self) -> BitVec;

    /// Restarts the stream from its initial state.
    fn reset(&mut self);

    /// Short human-readable name for reports.
    fn name(&self) -> String;
}

/// The paper's generator: a Rule-30 ring automaton whose cell states are
/// the row/column selection signals (Sect. III.A).
///
/// # Examples
///
/// ```
/// use tepics_ca::{BitPatternSource, CaSource, ElementaryRule};
///
/// let mut src = CaSource::new(128, 42, ElementaryRule::RULE_30, 128, 1);
/// let a = src.next_pattern();
/// src.reset();
/// let b = src.next_pattern();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct CaSource {
    initial: Automaton1D,
    automaton: Automaton1D,
    steps_per_pattern: usize,
}

impl CaSource {
    /// Creates a periodic-boundary CA source.
    ///
    /// * `cells` — pattern length (M + N for an M×N array).
    /// * `seed` — 64-bit seed expanded into the initial cell states.
    /// * `warmup` — steps run once before the first pattern; decorrelates
    ///   the early, visibly structured generations.
    /// * `steps_per_pattern` — automaton steps between successive
    ///   patterns (the paper uses one step per compressed sample).
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or `steps_per_pattern == 0`.
    pub fn new(
        cells: usize,
        seed: u64,
        rule: ElementaryRule,
        warmup: usize,
        steps_per_pattern: usize,
    ) -> Self {
        assert!(steps_per_pattern > 0, "steps_per_pattern must be positive");
        let mut automaton = Automaton1D::from_seed(cells, seed, rule, Boundary::Periodic);
        automaton.step_n(warmup);
        CaSource {
            initial: automaton.clone(),
            automaton,
            steps_per_pattern,
        }
    }

    /// The underlying automaton (post-warm-up state when freshly reset).
    pub fn automaton(&self) -> &Automaton1D {
        &self.automaton
    }
}

impl BitPatternSource for CaSource {
    fn pattern_len(&self) -> usize {
        self.automaton.len()
    }

    fn next_pattern(&mut self) -> BitVec {
        let pattern = self.automaton.state().clone();
        self.automaton.step_n(self.steps_per_pattern);
        pattern
    }

    fn reset(&mut self) {
        self.automaton = self.initial.clone();
    }

    fn name(&self) -> String {
        format!("ca-rule{}", self.automaton.rule().number())
    }
}

/// LFSR-driven pattern source (paper ref. \[14\] baseline): each pattern is
/// the next `pattern_len` output bits of a maximal-length register.
#[derive(Debug, Clone)]
pub struct LfsrSource {
    initial: Lfsr,
    lfsr: Lfsr,
    pattern_len: usize,
}

impl LfsrSource {
    /// Creates a source over a maximal-length LFSR of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `pattern_len == 0` or `width` has no tabulated taps.
    pub fn new(pattern_len: usize, width: u32, seed: u64) -> Self {
        assert!(pattern_len > 0, "pattern length must be positive");
        let lfsr = Lfsr::maximal(width, seed);
        LfsrSource {
            initial: lfsr.clone(),
            lfsr,
            pattern_len,
        }
    }
}

impl BitPatternSource for LfsrSource {
    fn pattern_len(&self) -> usize {
        self.pattern_len
    }

    fn next_pattern(&mut self) -> BitVec {
        self.lfsr.next_bits(self.pattern_len)
    }

    fn reset(&mut self) {
        self.lfsr = self.initial.clone();
    }

    fn name(&self) -> String {
        format!("lfsr{}", self.lfsr.width())
    }
}

/// Randomized Walsh–Hadamard rows (paper ref. \[13\] baseline): a seeded
/// permutation of the non-DC rows, truncated to the pattern length,
/// wrapping around when exhausted.
#[derive(Debug, Clone)]
pub struct HadamardSource {
    rows: HadamardRows,
    order: Vec<usize>,
    cursor: usize,
    pattern_len: usize,
}

impl HadamardSource {
    /// Creates a source of shuffled Hadamard rows covering `pattern_len`.
    pub fn new(pattern_len: usize, seed: u64) -> Self {
        let rows = HadamardRows::covering(pattern_len.max(2));
        let order = rows.shuffled_rows(seed);
        HadamardSource {
            rows,
            order,
            cursor: 0,
            pattern_len,
        }
    }
}

impl BitPatternSource for HadamardSource {
    fn pattern_len(&self) -> usize {
        self.pattern_len
    }

    fn next_pattern(&mut self) -> BitVec {
        let row = self.order[self.cursor % self.order.len()];
        self.cursor += 1;
        self.rows.row_truncated(row, self.pattern_len)
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }

    fn name(&self) -> String {
        format!("hadamard{}", self.rows.order())
    }
}

/// Software i.i.d. Bernoulli source — the idealized sub-Gaussian strategy
/// of Sect. I ("elements of Φ obtained from a thresholded normal
/// distribution"), not implementable on chip without storing Φ, included
/// as the reference point the hardware generators are judged against.
#[derive(Debug, Clone)]
pub struct BernoulliSource {
    seed: u64,
    density: f64,
    rng: SplitMix64,
    pattern_len: usize,
}

impl BernoulliSource {
    /// Creates an i.i.d. source with `P(bit = 1) = density`.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `(0, 1)` or `pattern_len == 0`.
    pub fn new(pattern_len: usize, seed: u64, density: f64) -> Self {
        assert!(pattern_len > 0, "pattern length must be positive");
        assert!(
            density > 0.0 && density < 1.0,
            "density must be in (0,1), got {density}"
        );
        BernoulliSource {
            seed,
            density,
            rng: SplitMix64::new(seed),
            pattern_len,
        }
    }

    /// The balanced (density ½) source.
    pub fn balanced(pattern_len: usize, seed: u64) -> Self {
        BernoulliSource::new(pattern_len, seed, 0.5)
    }
}

impl BitPatternSource for BernoulliSource {
    fn pattern_len(&self) -> usize {
        self.pattern_len
    }

    fn next_pattern(&mut self) -> BitVec {
        let density = self.density;
        let rng = &mut self.rng;
        BitVec::from_bools((0..self.pattern_len).map(|_| rng.next_f64() < density))
    }

    fn reset(&mut self) {
        self.rng = SplitMix64::new(self.seed);
    }

    fn name(&self) -> String {
        "bernoulli".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_reset_replay(src: &mut dyn BitPatternSource) {
        let first: Vec<BitVec> = (0..5).map(|_| src.next_pattern()).collect();
        src.reset();
        let second: Vec<BitVec> = (0..5).map(|_| src.next_pattern()).collect();
        assert_eq!(first, second, "{} does not replay after reset", src.name());
        for p in &first {
            assert_eq!(p.len(), src.pattern_len());
        }
    }

    #[test]
    fn all_sources_replay_after_reset() {
        check_reset_replay(&mut CaSource::new(128, 1, ElementaryRule::RULE_30, 64, 1));
        check_reset_replay(&mut LfsrSource::new(128, 16, 0xACE1));
        check_reset_replay(&mut HadamardSource::new(100, 3));
        check_reset_replay(&mut BernoulliSource::balanced(128, 9));
    }

    #[test]
    fn ca_source_advances_between_patterns() {
        let mut src = CaSource::new(64, 5, ElementaryRule::RULE_30, 10, 1);
        let a = src.next_pattern();
        let b = src.next_pattern();
        assert_ne!(a, b, "successive CA patterns must differ");
    }

    #[test]
    fn ca_source_steps_per_pattern_skips_generations() {
        let mut one = CaSource::new(64, 5, ElementaryRule::RULE_30, 0, 1);
        let mut two = CaSource::new(64, 5, ElementaryRule::RULE_30, 0, 2);
        let _ = one.next_pattern(); // gen 0
        let p1 = one.next_pattern(); // gen 1
        let _ = two.next_pattern(); // gen 0
        let p2 = two.next_pattern(); // gen 2
        assert_ne!(p1, p2);
    }

    #[test]
    fn ca_patterns_are_roughly_balanced_after_warmup() {
        let mut src = CaSource::new(128, 77, ElementaryRule::RULE_30, 256, 1);
        let mut ones = 0usize;
        let n = 200;
        for _ in 0..n {
            ones += src.next_pattern().count_ones();
        }
        let frac = ones as f64 / (n * 128) as f64;
        assert!(
            (0.42..0.58).contains(&frac),
            "rule 30 balance {frac} far from 1/2"
        );
    }

    #[test]
    fn bernoulli_density_is_respected() {
        let mut src = BernoulliSource::new(1000, 3, 0.2);
        let mut ones = 0usize;
        for _ in 0..50 {
            ones += src.next_pattern().count_ones();
        }
        let frac = ones as f64 / 50_000.0;
        assert!((0.17..0.23).contains(&frac), "density {frac} far from 0.2");
    }

    #[test]
    fn hadamard_source_wraps_around() {
        let mut src = HadamardSource::new(4, 1);
        // Order 4 has 3 non-DC rows; pattern 4 must equal pattern 1.
        let p: Vec<BitVec> = (0..4).map(|_| src.next_pattern()).collect();
        assert_eq!(p[3], p[0]);
    }

    #[test]
    fn sources_are_object_safe() {
        let mut sources: Vec<Box<dyn BitPatternSource>> = vec![
            Box::new(CaSource::new(16, 1, ElementaryRule::RULE_30, 4, 1)),
            Box::new(LfsrSource::new(16, 8, 1)),
            Box::new(HadamardSource::new(16, 1)),
            Box::new(BernoulliSource::balanced(16, 1)),
        ];
        for s in &mut sources {
            assert_eq!(s.next_pattern().len(), 16);
            assert!(!s.name().is_empty());
        }
    }
}
