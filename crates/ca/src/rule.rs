//! Elementary cellular-automaton rules (Wolfram numbering).
//!
//! An elementary rule maps the 3-bit neighborhood `(L, S, R)` — left
//! neighbor, own state, right neighbor — to the next state. The rule
//! number's bit at index `L·4 + S·2 + R` is the next state, which is
//! exactly the encoding of the paper's Table I for Rule 30.

use std::fmt;

/// An elementary (radius-1, binary) cellular-automaton rule.
///
/// # Examples
///
/// ```
/// use tepics_ca::ElementaryRule;
///
/// let r30 = ElementaryRule::RULE_30;
/// // Table I of the paper: (L,S,R) = (1,0,0) -> 1.
/// assert!(r30.next(true, false, false));
/// // (1,1,1) -> 0.
/// assert!(!r30.next(true, true, true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementaryRule(u8);

impl ElementaryRule {
    /// Rule 30 — the paper's strategy generator (Table I), proven
    /// aperiodic class-III by Jen (ref. \[10\]).
    pub const RULE_30: ElementaryRule = ElementaryRule(30);
    /// Rule 90 — additive (XOR of neighbors), used as a comparison point
    /// in the analysis experiments.
    pub const RULE_90: ElementaryRule = ElementaryRule(90);
    /// Rule 110 — universal, class IV.
    pub const RULE_110: ElementaryRule = ElementaryRule(110);
    /// Rule 45 — another chaotic (class III) rule.
    pub const RULE_45: ElementaryRule = ElementaryRule(45);
    /// Rule 184 — traffic rule, class II; a deliberately poor strategy
    /// generator used to show what the matrix experiments detect.
    pub const RULE_184: ElementaryRule = ElementaryRule(184);

    /// Creates a rule from its Wolfram number.
    pub const fn new(number: u8) -> Self {
        ElementaryRule(number)
    }

    /// The Wolfram rule number.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Next state for neighborhood `(l, s, r)`.
    #[inline]
    pub fn next(self, l: bool, s: bool, r: bool) -> bool {
        let idx = ((l as u8) << 2) | ((s as u8) << 1) | (r as u8);
        (self.0 >> idx) & 1 == 1
    }

    /// The full truth table as `(l, s, r, next)` rows, in the descending
    /// `(1,1,1) … (0,0,0)` order used by Table I of the paper.
    pub fn truth_table(self) -> [(bool, bool, bool, bool); 8] {
        let mut rows = [(false, false, false, false); 8];
        for (row, idx) in (0..8u8).rev().enumerate() {
            let l = idx & 4 != 0;
            let s = idx & 2 != 0;
            let r = idx & 1 != 0;
            rows[row] = (l, s, r, self.next(l, s, r));
        }
        rows
    }

    /// The mirror-image rule (swap `L` and `R`).
    pub fn mirrored(self) -> ElementaryRule {
        let mut out = 0u8;
        for idx in 0..8u8 {
            let l = idx & 4 != 0;
            let s = idx & 2 != 0;
            let r = idx & 1 != 0;
            let mirrored_idx = ((r as u8) << 2) | ((s as u8) << 1) | (l as u8);
            if (self.0 >> mirrored_idx) & 1 == 1 {
                out |= 1 << idx;
            }
        }
        ElementaryRule(out)
    }

    /// The complement rule (flip every cell before and after).
    pub fn complemented(self) -> ElementaryRule {
        let mut out = 0u8;
        for idx in 0..8u8 {
            let flipped_idx = (!idx) & 0b111;
            if (self.0 >> flipped_idx) & 1 == 0 {
                out |= 1 << idx;
            }
        }
        ElementaryRule(out)
    }

    /// `true` if the rule is *additive* over GF(2) (expressible as an XOR
    /// of a subset of `{L, S, R}`), like Rule 90 or Rule 150. Additive
    /// rules have linear structure that makes them weaker strategy
    /// generators; Rule 30 is not additive.
    pub fn is_additive(self) -> bool {
        // A rule is GF(2)-linear iff f(a^b) = f(a)^f(b) for all
        // neighborhood pairs, with f(0)=0.
        if self.next(false, false, false) {
            return false;
        }
        for a in 0..8u8 {
            for b in 0..8u8 {
                let f = |x: u8| (self.0 >> x) & 1;
                if f(a ^ b) != f(a) ^ f(b) {
                    return false;
                }
            }
        }
        true
    }
}

impl From<u8> for ElementaryRule {
    fn from(number: u8) -> Self {
        ElementaryRule(number)
    }
}

impl fmt::Display for ElementaryRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rule {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table I, row for row.
    #[test]
    fn rule_30_matches_paper_table_1() {
        let expected = [
            (true, true, true, false),
            (true, true, false, false),
            (true, false, true, false),
            (true, false, false, true),
            (false, true, true, true),
            (false, true, false, true),
            (false, false, true, true),
            (false, false, false, false),
        ];
        assert_eq!(ElementaryRule::RULE_30.truth_table(), expected);
    }

    /// Rule 30 has the closed form NS = L ⊕ (S ∨ R).
    #[test]
    fn rule_30_closed_form() {
        for idx in 0..8u8 {
            let l = idx & 4 != 0;
            let s = idx & 2 != 0;
            let r = idx & 1 != 0;
            assert_eq!(ElementaryRule::RULE_30.next(l, s, r), l ^ (s | r));
        }
    }

    #[test]
    fn rule_90_is_xor_of_neighbors() {
        for idx in 0..8u8 {
            let l = idx & 4 != 0;
            let s = idx & 2 != 0;
            let r = idx & 1 != 0;
            assert_eq!(ElementaryRule::RULE_90.next(l, s, r), l ^ r);
        }
    }

    #[test]
    fn additivity_classification() {
        assert!(ElementaryRule::RULE_90.is_additive());
        assert!(ElementaryRule::new(150).is_additive()); // l ^ s ^ r
        assert!(ElementaryRule::new(0).is_additive());
        assert!(!ElementaryRule::RULE_30.is_additive());
        assert!(!ElementaryRule::RULE_110.is_additive());
    }

    #[test]
    fn mirror_of_rule_30_is_rule_86() {
        // Known equivalence class of rule 30: mirror 86, complement 135.
        assert_eq!(ElementaryRule::RULE_30.mirrored().number(), 86);
        assert_eq!(ElementaryRule::RULE_30.complemented().number(), 135);
        // Mirroring twice is the identity.
        for n in 0..=255u8 {
            let r = ElementaryRule::new(n);
            assert_eq!(r.mirrored().mirrored(), r);
        }
    }

    #[test]
    fn display_shows_number() {
        assert_eq!(ElementaryRule::RULE_30.to_string(), "Rule 30");
    }
}
