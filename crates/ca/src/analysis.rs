//! Sequence-quality diagnostics for pattern generators.
//!
//! The paper selects Rule 30 because it "has been demonstrated to display
//! aperiodic (class III) behavior" (ref. \[10\], Jen 1990). This module
//! provides the measurements behind that claim and behind the
//! `ca_spectrum` experiment: state-cycle detection (Brent), balance,
//! block entropy, autocorrelation and Berlekamp–Massey linear complexity
//! — the last being the sharpest separator between an LFSR (complexity =
//! register width) and Rule 30's center column (complexity ≈ half the
//! sequence length, like a truly random stream).

use crate::automaton::Automaton1D;
use tepics_util::BitVec;

/// Result of cycle detection on a deterministic state sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleInfo {
    /// Steps before the cycle is entered (transient length μ).
    pub transient: u64,
    /// Cycle length λ.
    pub period: u64,
}

/// Brent's cycle-detection algorithm over automaton states.
///
/// Returns `None` if no cycle is found within `limit` steps (for Rule 30
/// on moderate ring sizes the cycle often exceeds any practical limit —
/// that *is* the aperiodicity result the paper leans on).
///
/// # Examples
///
/// ```
/// use tepics_ca::{analysis, Automaton1D, Boundary, ElementaryRule};
///
/// // Rule 204 (identity) has period 1.
/// let ca = Automaton1D::centered_one(16, ElementaryRule::new(204), Boundary::Periodic);
/// let info = analysis::find_cycle(&ca, 100).unwrap();
/// assert_eq!(info.period, 1);
/// ```
pub fn find_cycle(start: &Automaton1D, limit: u64) -> Option<CycleInfo> {
    // Brent: find λ first with powers of two, then μ.
    let mut power: u64 = 1;
    let mut lam: u64 = 1;
    let mut tortoise = start.clone();
    let mut hare = start.clone();
    hare.step();
    let mut taken: u64 = 1;
    while tortoise.state() != hare.state() {
        if taken >= limit {
            return None;
        }
        if power == lam {
            tortoise = hare.clone();
            power *= 2;
            lam = 0;
        }
        hare.step();
        taken += 1;
        lam += 1;
    }
    // Find μ: advance two cursors λ apart.
    let mut lead = start.clone();
    lead.step_n(lam as usize);
    let mut trail = start.clone();
    let mut mu: u64 = 0;
    while trail.state() != lead.state() {
        trail.step();
        lead.step();
        mu += 1;
        if mu > limit {
            return None;
        }
    }
    Some(CycleInfo {
        transient: mu,
        period: lam,
    })
}

/// The time series of one cell over `steps` generations (the automaton
/// is advanced; pass a clone to preserve the original).
pub fn cell_time_series(mut ca: Automaton1D, cell: usize, steps: usize) -> Vec<bool> {
    assert!(cell < ca.len(), "cell {cell} out of range");
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        out.push(ca.state().get(cell));
        ca.step();
    }
    out
}

/// Fraction of ones in a boolean sequence.
pub fn balance(seq: &[bool]) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    seq.iter().filter(|&&b| b).count() as f64 / seq.len() as f64
}

/// Shannon entropy (bits per symbol) of overlapping `k`-bit blocks.
///
/// An ideal random sequence approaches `k` bits; strong structure pulls
/// the value down. `k ≤ 16` keeps the table small.
///
/// # Panics
///
/// Panics if `k == 0`, `k > 16`, or the sequence is shorter than `k`.
pub fn block_entropy(seq: &[bool], k: usize) -> f64 {
    assert!(k > 0 && k <= 16, "block size {k} unsupported");
    assert!(seq.len() >= k, "sequence shorter than block");
    let mut counts = vec![0u64; 1 << k];
    let total = seq.len() - k + 1;
    for w in seq.windows(k) {
        let mut idx = 0usize;
        for &b in w {
            idx = (idx << 1) | b as usize;
        }
        counts[idx] += 1;
    }
    let mut h = 0.0;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

/// Normalized autocorrelation of a ±1-mapped boolean sequence at the
/// given lag: `1.0` means identical, `0.0` uncorrelated.
///
/// # Panics
///
/// Panics if `lag >= seq.len()`.
pub fn autocorrelation(seq: &[bool], lag: usize) -> f64 {
    assert!(lag < seq.len(), "lag {lag} too large");
    let n = seq.len() - lag;
    let mut acc = 0i64;
    for i in 0..n {
        let a = if seq[i] { 1i64 } else { -1 };
        let b = if seq[i + lag] { 1i64 } else { -1 };
        acc += a * b;
    }
    acc as f64 / n as f64
}

/// Berlekamp–Massey over GF(2): length of the shortest LFSR that
/// generates `seq`.
///
/// A maximal-length LFSR stream of width `w` has complexity exactly `w`;
/// a random sequence of length `n` has complexity ≈ `n/2`. This is the
/// quantitative version of "an LFSR is linear, Rule 30 is not".
pub fn linear_complexity(seq: &[bool]) -> usize {
    let n = seq.len();
    let s: Vec<u8> = seq.iter().map(|&b| b as u8).collect();
    let mut c = vec![0u8; n + 1]; // current connection polynomial
    let mut b = vec![0u8; n + 1]; // previous polynomial
    c[0] = 1;
    b[0] = 1;
    let mut l: usize = 0;
    let mut m: isize = -1;
    for i in 0..n {
        // Discrepancy.
        let mut d = s[i];
        for j in 1..=l {
            d ^= c[j] & s[i - j];
        }
        if d == 1 {
            let t = c.clone();
            let shift = (i as isize - m) as usize;
            for j in 0..=(n.saturating_sub(shift)) {
                if b[j] == 1 {
                    c[j + shift] ^= 1;
                }
            }
            if 2 * l <= i {
                l = i + 1 - l;
                m = i as isize;
                b = t;
            }
        }
    }
    l
}

/// Summary of generator-quality metrics for one boolean sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceReport {
    /// Fraction of ones.
    pub balance: f64,
    /// Entropy of 8-bit blocks, in bits (8 is ideal).
    pub entropy8: f64,
    /// Maximum |autocorrelation| over lags 1..=32.
    pub max_autocorr: f64,
    /// Berlekamp–Massey linear complexity.
    pub linear_complexity: usize,
    /// Sequence length the metrics were computed on.
    pub len: usize,
}

/// Computes the full metric suite on a sequence.
///
/// # Panics
///
/// Panics if the sequence is shorter than 64 samples.
pub fn analyze_sequence(seq: &[bool]) -> SequenceReport {
    assert!(seq.len() >= 64, "need at least 64 samples");
    let max_autocorr = (1..=32)
        .map(|lag| autocorrelation(seq, lag).abs())
        .fold(0.0, f64::max);
    SequenceReport {
        balance: balance(seq),
        entropy8: block_entropy(seq, 8),
        max_autocorr,
        linear_complexity: linear_complexity(seq),
        len: seq.len(),
    }
}

/// Hamming-weight trajectory of the automaton (ones per generation), a
/// cheap visual of class behavior.
pub fn weight_trajectory(mut ca: Automaton1D, steps: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        out.push(ca.state().count_ones());
        ca.step();
    }
    out
}

/// Renders a space–time diagram as ASCII art (`#` = 1, `.` = 0), used by
/// the experiment harness to reproduce the classic Rule-30 triangle.
pub fn render_space_time(rows: &[BitVec]) -> String {
    let mut out = String::new();
    for row in rows {
        for i in 0..row.len() {
            out.push(if row.get(i) { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Boundary;
    use crate::lfsr::Lfsr;
    use crate::rule::ElementaryRule;

    #[test]
    fn identity_rule_has_period_one() {
        let ca = Automaton1D::centered_one(32, ElementaryRule::new(204), Boundary::Periodic);
        let info = find_cycle(&ca, 100).unwrap();
        assert_eq!(info.period, 1);
        assert_eq!(info.transient, 0);
    }

    #[test]
    fn rule_0_reaches_fixed_point_after_transient() {
        let ca = Automaton1D::centered_one(32, ElementaryRule::new(0), Boundary::Periodic);
        let info = find_cycle(&ca, 100).unwrap();
        assert_eq!(info.period, 1);
        assert_eq!(info.transient, 1);
    }

    #[test]
    fn rule_90_small_ring_has_short_cycle() {
        // Additive rules on small rings cycle quickly.
        let ca = Automaton1D::centered_one(8, ElementaryRule::RULE_90, Boundary::Periodic);
        let info = find_cycle(&ca, 10_000).expect("rule 90 must cycle fast on 8 cells");
        assert!(
            info.period <= 64,
            "period {} unexpectedly long",
            info.period
        );
    }

    #[test]
    fn rule_30_outlives_rule_90_on_equal_ring() {
        let r30 = Automaton1D::centered_one(16, ElementaryRule::RULE_30, Boundary::Periodic);
        let r90 = Automaton1D::centered_one(16, ElementaryRule::RULE_90, Boundary::Periodic);
        let p30 = find_cycle(&r30, 1_000_000).unwrap();
        let p90 = find_cycle(&r90, 1_000_000).unwrap();
        assert!(
            p30.period > p90.period,
            "rule 30 period {} should exceed rule 90 period {}",
            p30.period,
            p90.period
        );
    }

    #[test]
    fn lfsr_linear_complexity_equals_width() {
        let mut lfsr = Lfsr::maximal(12, 0x5A5);
        let seq: Vec<bool> = (0..512).map(|_| lfsr.next_bool()).collect();
        assert_eq!(linear_complexity(&seq), 12);
    }

    #[test]
    fn rule_30_center_column_has_high_linear_complexity() {
        let ca = Automaton1D::centered_one(257, ElementaryRule::RULE_30, Boundary::Periodic);
        let seq = cell_time_series(ca, 128, 512);
        let lc = linear_complexity(&seq);
        // Random-like sequences have complexity near n/2 = 256.
        assert!(lc > 200, "rule 30 linear complexity {lc} too low");
    }

    #[test]
    fn linear_complexity_of_constant_sequences() {
        assert_eq!(linear_complexity(&[false; 100]), 0);
        // All-ones is generated by an LFSR of length 1 (c(x) = 1 + x).
        assert_eq!(linear_complexity(&[true; 100]), 1);
    }

    #[test]
    fn block_entropy_separates_constant_from_random() {
        let constant = vec![true; 300];
        assert!(block_entropy(&constant, 8) < 0.01);
        let mut lfsr = Lfsr::maximal(16, 0xACE1);
        let pseudo: Vec<bool> = (0..4096).map(|_| lfsr.next_bool()).collect();
        assert!(block_entropy(&pseudo, 8) > 7.0);
    }

    #[test]
    fn autocorrelation_detects_period_two() {
        let alt: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        assert!((autocorrelation(&alt, 1) + 1.0).abs() < 1e-9);
        assert!((autocorrelation(&alt, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analyze_sequence_produces_consistent_report() {
        let ca = Automaton1D::centered_one(129, ElementaryRule::RULE_30, Boundary::Periodic);
        let seq = cell_time_series(ca, 64, 512);
        let rep = analyze_sequence(&seq);
        assert!((0.3..0.7).contains(&rep.balance));
        assert!(rep.entropy8 > 6.0, "entropy {}", rep.entropy8);
        assert!(rep.linear_complexity > 100);
        assert_eq!(rep.len, 512);
    }

    #[test]
    fn render_space_time_shape() {
        let mut ca = Automaton1D::centered_one(9, ElementaryRule::RULE_30, Boundary::Fixed(false));
        let rows = ca.space_time(3);
        let art = render_space_time(&rows);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "....#....");
        assert_eq!(lines[1], "...###...");
    }
}
