//! Walsh–Hadamard selection patterns.
//!
//! Hadamard vectors are the structured measurement alternative cited by
//! the paper (ref. \[13\]): deterministic ±1 rows that are trivially
//! generated on chip. Row `k` of the natural-order Hadamard matrix of
//! size `2^m` is `H[k][i] = (−1)^popcount(k & i)`; we expose rows as 0/1
//! selection masks (`1` where `H = −1`), the convention used by the
//! sensor's XOR-select pixels.

use tepics_util::{BitVec, SplitMix64};

/// Generator of Walsh–Hadamard rows as selection bit masks.
///
/// # Examples
///
/// ```
/// use tepics_ca::HadamardRows;
///
/// let rows = HadamardRows::new(8);
/// // Row 0 is the all-+1 row: empty selection mask.
/// assert_eq!(rows.row(0).count_ones(), 0);
/// // Every other natural-order row is balanced.
/// assert_eq!(rows.row(3).count_ones(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HadamardRows {
    order: usize,
}

impl HadamardRows {
    /// Creates a generator for the Hadamard matrix of the given order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero or not a power of two.
    pub fn new(order: usize) -> Self {
        assert!(
            order > 0 && order.is_power_of_two(),
            "Hadamard order must be a power of two, got {order}"
        );
        HadamardRows { order }
    }

    /// Smallest valid order that covers `n` elements.
    pub fn covering(n: usize) -> Self {
        HadamardRows::new(n.next_power_of_two().max(1))
    }

    /// Matrix order (number of rows = number of columns).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Row `k` as a 0/1 selection mask (`1` ⇔ `H[k][i] = −1`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= order`.
    pub fn row(&self, k: usize) -> BitVec {
        assert!(k < self.order, "row {k} out of range 0..{}", self.order);
        BitVec::from_bools((0..self.order).map(|i| (k & i).count_ones() % 2 == 1))
    }

    /// Row `k` truncated to the first `n` entries (for arrays whose size
    /// is not a power of two).
    pub fn row_truncated(&self, k: usize, n: usize) -> BitVec {
        assert!(
            n <= self.order,
            "truncation {n} exceeds order {}",
            self.order
        );
        self.row(k).slice(0, n)
    }

    /// Signed entry `H[k][i] ∈ {−1, +1}`.
    pub fn entry(&self, k: usize, i: usize) -> i8 {
        assert!(k < self.order && i < self.order, "index out of range");
        if (k & i).count_ones() % 2 == 1 {
            -1
        } else {
            1
        }
    }

    /// A deterministic pseudo-random permutation of row indices
    /// `1..order` (row 0, the DC row, is excluded — it selects nothing).
    ///
    /// Randomized row subsets are the standard way to use Hadamard
    /// ensembles for CS.
    pub fn shuffled_rows(&self, seed: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (1..self.order).collect();
        let mut rng = SplitMix64::new(seed);
        for i in (1..idx.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            idx.swap(i, j);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ±1 dot product between two selection masks of equal length.
    fn signed_dot(a: &BitVec, b: &BitVec) -> i64 {
        (0..a.len())
            .map(|i| {
                let x = if a.get(i) { -1i64 } else { 1 };
                let y = if b.get(i) { -1i64 } else { 1 };
                x * y
            })
            .sum()
    }

    #[test]
    fn rows_are_mutually_orthogonal() {
        let h = HadamardRows::new(16);
        for k in 0..16 {
            for l in 0..16 {
                let dot = signed_dot(&h.row(k), &h.row(l));
                if k == l {
                    assert_eq!(dot, 16);
                } else {
                    assert_eq!(dot, 0, "rows {k},{l} not orthogonal");
                }
            }
        }
    }

    #[test]
    fn nonzero_rows_are_balanced() {
        let h = HadamardRows::new(64);
        for k in 1..64 {
            assert_eq!(h.row(k).count_ones(), 32, "row {k} unbalanced");
        }
    }

    #[test]
    fn entry_matches_row_mask() {
        let h = HadamardRows::new(8);
        for k in 0..8 {
            let row = h.row(k);
            for i in 0..8 {
                assert_eq!(h.entry(k, i) == -1, row.get(i));
            }
        }
    }

    #[test]
    fn covering_rounds_up() {
        assert_eq!(HadamardRows::covering(100).order(), 128);
        assert_eq!(HadamardRows::covering(128).order(), 128);
        assert_eq!(HadamardRows::covering(1).order(), 1);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let h = HadamardRows::new(32);
        let a = h.shuffled_rows(7);
        let b = h.shuffled_rows(7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_order_panics() {
        HadamardRows::new(12);
    }
}
