//! Gate-level model of the CA ring around the sensor (Fig. 2 + Fig. 3).
//!
//! [`Automaton1D`] is the *behavioral* model; this
//! module is the *structural* one: `M + N` instances of the Fig. 3 cell
//! netlist, each with a state flip-flop, wired in a ring. Stepping
//! evaluates every cell's combinational logic from the current register
//! values and then clocks all registers at once — exactly what the
//! silicon does. The equivalence tests between the two models are the
//! RTL-vs-behavioral check an EDA flow would run on the real chip, and
//! [`GateLevelRing::to_vcd`] dumps the register activity for a waveform
//! viewer.

use crate::automaton::{Automaton1D, Boundary};
use crate::gates::{check_against_rule, synthesize_rule, Netlist};
use crate::rule::ElementaryRule;
use tepics_util::BitVec;

/// A synchronous ring of gate-level CA cells.
///
/// # Examples
///
/// ```
/// use tepics_ca::ring::GateLevelRing;
/// use tepics_ca::ElementaryRule;
///
/// let mut ring = GateLevelRing::new(16, ElementaryRule::RULE_30, 0x5EED);
/// let before = ring.state().clone();
/// ring.clock();
/// assert_ne!(*ring.state(), before);
/// ```
#[derive(Debug, Clone)]
pub struct GateLevelRing {
    cell: Netlist,
    rule: ElementaryRule,
    state: BitVec,
    cycles: u64,
}

impl GateLevelRing {
    /// Builds a ring of `cells` gate-level cells for `rule`, with the
    /// registers initialized from `seed` exactly like
    /// [`Automaton1D::from_seed`].
    ///
    /// The cell netlist is synthesized from the rule's truth table and
    /// verified against it before use, so a synthesis bug cannot slip
    /// into the simulation silently.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or the synthesized netlist fails its
    /// equivalence check (which would be an internal error).
    pub fn new(cells: usize, rule: ElementaryRule, seed: u64) -> Self {
        assert!(cells > 0, "ring needs at least one cell");
        let cell = synthesize_rule(rule);
        assert!(
            check_against_rule(&cell, rule).is_none(),
            "synthesized cell does not implement {rule}"
        );
        let reference = Automaton1D::from_seed(cells, seed, rule, Boundary::Periodic);
        GateLevelRing {
            cell,
            rule,
            state: reference.state().clone(),
            cycles: 0,
        }
    }

    /// Current register values (one per cell).
    pub fn state(&self) -> &BitVec {
        &self.state
    }

    /// The implemented rule.
    pub fn rule(&self) -> ElementaryRule {
        self.rule
    }

    /// Clock cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Gate count of one cell (area proxy for the ring).
    pub fn gates_per_cell(&self) -> usize {
        self.cell.gate_count()
    }

    /// Estimated transistors for the whole ring, including a ~20T DFF
    /// per cell.
    pub fn ring_transistors(&self) -> u32 {
        (self.cell.transistor_count() + 20) * self.state.len() as u32
    }

    /// One clock edge: evaluate every cell's combinational next-state
    /// from the registered values, then update all registers.
    pub fn clock(&mut self) {
        let n = self.state.len();
        let next = BitVec::from_bools((0..n).map(|i| {
            let l = self.state.get((i + n - 1) % n);
            let s = self.state.get(i);
            let r = self.state.get((i + 1) % n);
            self.cell.eval(&[l, s, r])[0]
        }));
        self.state = next;
        self.cycles += 1;
    }

    /// Runs `n` clock cycles.
    pub fn clock_n(&mut self, n: usize) {
        for _ in 0..n {
            self.clock();
        }
    }

    /// Dumps `cycles` clock cycles of register activity as IEEE-1364
    /// VCD text (wire `q<i>` per cell), advancing the ring.
    pub fn to_vcd(&mut self, cycles: usize, clk_period: f64) -> String {
        let n = self.state.len();
        let mut out = String::new();
        out.push_str("$date TEPICS gate-level CA ring $end\n");
        out.push_str("$version tepics-ca $end\n");
        out.push_str("$timescale 1ps $end\n");
        out.push_str("$scope module ca_ring $end\n");
        for i in 0..n {
            out.push_str(&format!("$var wire 1 {} q{} $end\n", Self::ident(i), i));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n$dumpvars\n$end\n");
        let mut last: Vec<Option<bool>> = vec![None; n];
        for c in 0..=cycles {
            let ts = (c as f64 * clk_period / 1e-12).round() as u64;
            let mut wrote_ts = false;
            for (i, slot) in last.iter_mut().enumerate() {
                let v = self.state.get(i);
                if *slot != Some(v) {
                    if !wrote_ts {
                        out.push_str(&format!("#{ts}\n"));
                        wrote_ts = true;
                    }
                    out.push_str(&format!("{}{}\n", u8::from(v), Self::ident(i)));
                    *slot = Some(v);
                }
            }
            if c < cycles {
                self.clock();
            }
        }
        out
    }

    fn ident(i: usize) -> String {
        let mut i = i;
        let mut s = String::new();
        loop {
            s.push((b'!' + (i % 94) as u8) as char);
            i /= 94;
            if i == 0 {
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RTL-vs-behavioral equivalence check: the gate-level ring and
    /// the word-parallel behavioral automaton must agree cycle for
    /// cycle, for every rule class we use.
    #[test]
    fn gate_level_matches_behavioral_model() {
        for rule in [30u8, 45, 90, 110, 150] {
            let rule = ElementaryRule::new(rule);
            let mut rtl = GateLevelRing::new(64, rule, 0xC0DE);
            let mut beh = Automaton1D::from_seed(64, 0xC0DE, rule, Boundary::Periodic);
            for cycle in 0..128 {
                assert_eq!(
                    rtl.state(),
                    beh.state(),
                    "{rule}: diverged at cycle {cycle}"
                );
                rtl.clock();
                beh.step();
            }
        }
    }

    #[test]
    fn prototype_ring_size_and_cost() {
        let ring = GateLevelRing::new(128, ElementaryRule::RULE_30, 1);
        assert_eq!(ring.state().len(), 128);
        assert!(ring.gates_per_cell() >= 2);
        // Order of magnitude: a few thousand transistors for the ring.
        let t = ring.ring_transistors();
        assert!((1_000..50_000).contains(&t), "ring transistor count {t}");
    }

    #[test]
    fn cycle_counter_advances() {
        let mut ring = GateLevelRing::new(16, ElementaryRule::RULE_30, 2);
        ring.clock_n(10);
        assert_eq!(ring.cycles(), 10);
    }

    #[test]
    fn vcd_dump_is_well_formed_and_advances_the_ring() {
        let mut ring = GateLevelRing::new(8, ElementaryRule::RULE_30, 3);
        let vcd = ring.to_vcd(4, 41.67e-9);
        assert_eq!(ring.cycles(), 4);
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$var wire 1 ! q0 $end"));
        // Four clock periods at ~41.67 ns => timestamps up to ~166680 ps.
        assert!(vcd.contains("#0\n"));
        let max_ts: u64 = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#').and_then(|t| t.parse().ok()))
            .max()
            .unwrap();
        assert!(max_ts > 100_000, "timeline too short: {max_ts} ps");
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_ring_panics() {
        GateLevelRing::new(0, ElementaryRule::RULE_30, 1);
    }
}
