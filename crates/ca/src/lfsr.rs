//! Linear feedback shift registers.
//!
//! LFSRs are the classic on-chip pseudo-random generator and the
//! measurement-matrix source of the paper's refs. \[13\] and \[14\]; the
//! `matrices` and `ca_spectrum` experiments use them as the baseline the
//! cellular automaton is compared against. Both Fibonacci (external XOR)
//! and Galois (internal XOR) forms are provided; for equal polynomials
//! they generate the same maximal-length (`2^w − 1`) state cycle.

use tepics_util::BitVec;

/// Feedback tap positions (1-based, as conventionally published) for
/// maximal-length polynomials, widths 2..=32. Source: the classic
/// XAPP052 table of primitive polynomials over GF(2).
const MAXIMAL_TAPS: [&[u32]; 31] = [
    &[2, 1],           // w=2
    &[3, 2],           // w=3
    &[4, 3],           // w=4
    &[5, 3],           // w=5
    &[6, 5],           // w=6
    &[7, 6],           // w=7
    &[8, 6, 5, 4],     // w=8
    &[9, 5],           // w=9
    &[10, 7],          // w=10
    &[11, 9],          // w=11
    &[12, 6, 4, 1],    // w=12
    &[13, 4, 3, 1],    // w=13
    &[14, 5, 3, 1],    // w=14
    &[15, 14],         // w=15
    &[16, 15, 13, 4],  // w=16
    &[17, 14],         // w=17
    &[18, 11],         // w=18
    &[19, 6, 2, 1],    // w=19
    &[20, 17],         // w=20
    &[21, 19],         // w=21
    &[22, 21],         // w=22
    &[23, 18],         // w=23
    &[24, 23, 22, 17], // w=24
    &[25, 22],         // w=25
    &[26, 6, 2, 1],    // w=26
    &[27, 5, 2, 1],    // w=27
    &[28, 25],         // w=28
    &[29, 27],         // w=29
    &[30, 6, 4, 1],    // w=30
    &[31, 28],         // w=31
    &[32, 22, 2, 1],   // w=32
];

/// The register form: where the feedback XOR sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LfsrForm {
    /// External-XOR (many-to-one): the new bit is the XOR of the taps.
    Fibonacci,
    /// Internal-XOR (one-to-many): taps are XORed into the shifting state.
    Galois,
}

/// A binary linear feedback shift register of width ≤ 63.
///
/// # Examples
///
/// ```
/// use tepics_ca::Lfsr;
///
/// let mut lfsr = Lfsr::maximal(16, 0xACE1);
/// let bit = lfsr.next_bit();
/// assert!(bit == 0 || bit == 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr {
    width: u32,
    state: u64,
    tap_mask: u64,
    form: LfsrForm,
}

impl Lfsr {
    /// Creates a maximal-length Fibonacci LFSR of the given width.
    ///
    /// A zero `seed` is silently replaced by 1 (the all-zero state is a
    /// fixed point of any LFSR).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=32`.
    pub fn maximal(width: u32, seed: u64) -> Self {
        assert!(
            (2..=32).contains(&width),
            "no maximal-length taps tabulated for width {width}"
        );
        let taps = MAXIMAL_TAPS[(width - 2) as usize];
        Lfsr::with_taps(width, taps, seed, LfsrForm::Fibonacci)
    }

    /// Creates an LFSR with explicit 1-based tap positions.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or > 63, or any tap is outside `1..=width`.
    pub fn with_taps(width: u32, taps: &[u32], seed: u64, form: LfsrForm) -> Self {
        assert!(width > 0 && width <= 63, "unsupported LFSR width {width}");
        let mut tap_mask = 0u64;
        for &t in taps {
            assert!(
                (1..=width).contains(&t),
                "tap {t} outside register width {width}"
            );
            tap_mask |= 1u64 << (t - 1);
        }
        assert!(tap_mask != 0, "LFSR needs at least one tap");
        let mask = (1u64 << width) - 1;
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Lfsr {
            width,
            state,
            tap_mask,
            form,
        }
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current register contents.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one step and returns the output bit (0 or 1).
    #[inline]
    pub fn next_bit(&mut self) -> u8 {
        let mask = (1u64 << self.width) - 1;
        match self.form {
            LfsrForm::Fibonacci => {
                let fb = ((self.state & self.tap_mask).count_ones() & 1) as u64;
                let out = (self.state >> (self.width - 1)) & 1;
                self.state = ((self.state << 1) | fb) & mask;
                out as u8
            }
            LfsrForm::Galois => {
                // Standard one-to-many form: the tap mask *is* the
                // polynomial mask (bit t-1 per published tap t; the top
                // tap sets the re-entering MSB).
                let out = self.state & 1;
                self.state >>= 1;
                if out == 1 {
                    self.state ^= self.tap_mask;
                }
                out as u8
            }
        }
    }

    /// Advances one step and returns the output as a boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_bit() == 1
    }

    /// Fills a [`BitVec`] of length `n` with the next `n` output bits.
    pub fn next_bits(&mut self, n: usize) -> BitVec {
        BitVec::from_bools((0..n).map(|_| self.next_bool()))
    }

    /// Measures the state-cycle length from the current state by stepping
    /// until it recurs, up to `limit` steps. Returns `None` if the cycle
    /// is longer than `limit`.
    pub fn cycle_length(&self, limit: u64) -> Option<u64> {
        let mut probe = self.clone();
        let start = probe.state;
        for i in 1..=limit {
            probe.next_bit();
            if probe.state == start {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_fibonacci_periods_are_2w_minus_1() {
        for width in 2..=16u32 {
            let lfsr = Lfsr::maximal(width, 1);
            let expected = (1u64 << width) - 1;
            assert_eq!(
                lfsr.cycle_length(expected + 10),
                Some(expected),
                "width {width} is not maximal-length"
            );
        }
    }

    #[test]
    fn galois_form_is_also_maximal() {
        for width in [4u32, 8, 12, 16] {
            let taps = MAXIMAL_TAPS[(width - 2) as usize];
            let lfsr = Lfsr::with_taps(width, taps, 1, LfsrForm::Galois);
            let expected = (1u64 << width) - 1;
            assert_eq!(lfsr.cycle_length(expected + 10), Some(expected));
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut lfsr = Lfsr::maximal(8, 0);
        assert_ne!(lfsr.state(), 0);
        lfsr.next_bit();
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn output_is_balanced_over_a_period() {
        let mut lfsr = Lfsr::maximal(10, 0x2A5);
        let period = (1usize << 10) - 1;
        let ones: u32 = (0..period).map(|_| lfsr.next_bit() as u32).sum();
        // A maximal LFSR outputs 2^(w-1) ones per period.
        assert_eq!(ones, 512);
    }

    #[test]
    fn next_bits_returns_requested_length() {
        let mut lfsr = Lfsr::maximal(16, 0xBEEF);
        let bits = lfsr.next_bits(200);
        assert_eq!(bits.len(), 200);
        // Stream should not be constant.
        assert!(bits.count_ones() > 50 && bits.count_ones() < 150);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Lfsr::maximal(16, 0x1234);
        let mut b = Lfsr::maximal(16, 0x1234);
        for _ in 0..100 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }

    #[test]
    fn nonmaximal_taps_give_short_cycle() {
        // x^4 + x^2 + 1 is not primitive: period divides 6.
        let lfsr = Lfsr::with_taps(4, &[4, 2], 1, LfsrForm::Fibonacci);
        let period = lfsr.cycle_length(100).expect("cycle must close");
        assert!(period < 15, "non-primitive polynomial gave period {period}");
    }

    #[test]
    #[should_panic(expected = "outside register width")]
    fn tap_beyond_width_panics() {
        Lfsr::with_taps(4, &[5], 1, LfsrForm::Fibonacci);
    }

    #[test]
    #[should_panic(expected = "no maximal-length taps")]
    fn unsupported_width_panics() {
        Lfsr::maximal(33, 1);
    }
}
