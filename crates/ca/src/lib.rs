//! Pseudo-random pattern generation for on-chip compressive sampling.
//!
//! The DATE 2018 sensor generates its measurement strategy Φ *on chip*
//! with a one-dimensional cellular automaton (Rule 30) placed around the
//! pixel array, so that the strategy never has to be stored or
//! transmitted — the receiver replays the automaton from the seed. This
//! crate implements that generator and every alternative the paper cites:
//!
//! * [`ElementaryRule`] / [`Automaton1D`] — all 256 Wolfram elementary
//!   rules with periodic or fixed boundaries, word-parallel stepping,
//!   and the paper's Table I Rule 30.
//! * [`gates`] — a gate-level netlist of the Fig. 3 Rule-30 cell, checked
//!   for equivalence against the truth table.
//! * [`Lfsr`] — Fibonacci/Galois linear feedback shift registers
//!   (the paper's ref. \[14\] baseline).
//! * [`hadamard`] — Walsh–Hadamard selection rows (ref. \[13\] baseline).
//! * [`analysis`] — aperiodicity diagnostics: cycle detection, balance,
//!   entropy, autocorrelation and Berlekamp–Massey linear complexity
//!   (the class-III behavior of ref. \[10\]).
//! * [`BitPatternSource`] — the abstraction the imager consumes; every
//!   generator above implements it.
//!
//! # Examples
//!
//! ```
//! use tepics_ca::{Automaton1D, Boundary, ElementaryRule};
//!
//! // The paper's generator: Rule 30 on a ring.
//! let mut ca = Automaton1D::centered_one(128, ElementaryRule::RULE_30, Boundary::Periodic);
//! ca.step_n(64);
//! assert_eq!(ca.state().len(), 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod automaton;
pub mod gates;
pub mod hadamard;
pub mod lfsr;
pub mod ring;
pub mod rule;
pub mod source;

pub use automaton::{Automaton1D, Boundary};
pub use hadamard::HadamardRows;
pub use lfsr::Lfsr;
pub use rule::ElementaryRule;
pub use source::{BernoulliSource, BitPatternSource, CaSource, HadamardSource, LfsrSource};
