//! Gate-level modeling of the CA cell (paper Fig. 3).
//!
//! The prototype implements each Rule-30 cell in CMOS standard gates.
//! This module provides a tiny combinational netlist representation, the
//! Fig. 3 cell in two technology flavors (direct XOR/OR and NAND-only),
//! a generic sum-of-products synthesizer for *any* elementary rule, and
//! exhaustive equivalence checking against the rule truth table — the
//! `table1`/`fig3` experiment drives these.

use crate::rule::ElementaryRule;

/// A combinational gate. Operand values are signal indices: signals
/// `0..n_inputs` are primary inputs, and gate `g` drives signal
/// `n_inputs + g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Inverter.
    Not(usize),
    /// Non-inverting buffer.
    Buf(usize),
    /// 2-input AND.
    And(usize, usize),
    /// 2-input OR.
    Or(usize, usize),
    /// 2-input NAND.
    Nand(usize, usize),
    /// 2-input NOR.
    Nor(usize, usize),
    /// 2-input XOR (the pixel uses a 6-transistor XOR; see Fig. 1).
    Xor(usize, usize),
    /// 2-input XNOR.
    Xnor(usize, usize),
    /// 3-input AND.
    And3(usize, usize, usize),
    /// 3-input NAND (the pixel's output-control gate is a 3-input NAND).
    Nand3(usize, usize, usize),
    /// 3-input OR.
    Or3(usize, usize, usize),
}

impl Gate {
    fn eval(self, sig: &[bool]) -> bool {
        match self {
            Gate::Not(a) => !sig[a],
            Gate::Buf(a) => sig[a],
            Gate::And(a, b) => sig[a] && sig[b],
            Gate::Or(a, b) => sig[a] || sig[b],
            Gate::Nand(a, b) => !(sig[a] && sig[b]),
            Gate::Nor(a, b) => !(sig[a] || sig[b]),
            Gate::Xor(a, b) => sig[a] ^ sig[b],
            Gate::Xnor(a, b) => !(sig[a] ^ sig[b]),
            Gate::And3(a, b, c) => sig[a] && sig[b] && sig[c],
            Gate::Nand3(a, b, c) => !(sig[a] && sig[b] && sig[c]),
            Gate::Or3(a, b, c) => sig[a] || sig[b] || sig[c],
        }
    }

    /// Approximate transistor count in static CMOS, used by the chip
    /// area-accounting model.
    pub fn transistor_count(self) -> u32 {
        match self {
            Gate::Not(_) => 2,
            Gate::Buf(_) => 4,
            Gate::Nand(_, _) | Gate::Nor(_, _) => 4,
            Gate::And(_, _) | Gate::Or(_, _) => 6,
            Gate::Xor(_, _) | Gate::Xnor(_, _) => 6, // paper: 6-T XOR in pixel
            Gate::Nand3(_, _, _) => 6,
            Gate::And3(_, _, _) | Gate::Or3(_, _, _) => 8,
        }
    }
}

/// A feed-forward combinational netlist.
///
/// Gates must be listed in topological order (each operand refers to a
/// primary input or an earlier gate), which [`Netlist::push`] enforces.
///
/// # Examples
///
/// ```
/// use tepics_ca::gates::{Gate, Netlist};
///
/// // f = a XOR (b OR c): the Rule 30 next-state function.
/// let mut n = Netlist::new(3);
/// let or = n.push(Gate::Or(1, 2));
/// let out = n.push(Gate::Xor(0, or));
/// n.set_outputs(vec![out]);
/// assert_eq!(n.eval(&[true, false, false]), vec![true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    n_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<usize>,
}

impl Netlist {
    /// Creates an empty netlist with `n_inputs` primary inputs.
    pub fn new(n_inputs: usize) -> Self {
        Netlist {
            n_inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Appends a gate, returning the signal index it drives.
    ///
    /// # Panics
    ///
    /// Panics if any operand refers to a not-yet-defined signal.
    pub fn push(&mut self, gate: Gate) -> usize {
        let limit = self.n_inputs + self.gates.len();
        let check = |s: usize| assert!(s < limit, "gate operand {s} not yet defined");
        match gate {
            Gate::Not(a) | Gate::Buf(a) => check(a),
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xor(a, b)
            | Gate::Xnor(a, b) => {
                check(a);
                check(b);
            }
            Gate::And3(a, b, c) | Gate::Nand3(a, b, c) | Gate::Or3(a, b, c) => {
                check(a);
                check(b);
                check(c);
            }
        }
        self.gates.push(gate);
        limit
    }

    /// Declares which signals are outputs.
    pub fn set_outputs(&mut self, outputs: Vec<usize>) {
        let limit = self.n_inputs + self.gates.len();
        for &o in &outputs {
            assert!(o < limit, "output signal {o} not defined");
        }
        self.outputs = outputs;
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Total transistor estimate (static CMOS).
    pub fn transistor_count(&self) -> u32 {
        self.gates.iter().map(|g| g.transistor_count()).sum()
    }

    /// Evaluates the netlist for one input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.n_inputs, "wrong number of inputs");
        let mut sig = Vec::with_capacity(self.n_inputs + self.gates.len());
        sig.extend_from_slice(inputs);
        for &g in &self.gates {
            let v = g.eval(&sig);
            sig.push(v);
        }
        self.outputs.iter().map(|&o| sig[o]).collect()
    }
}

/// The Fig. 3 Rule-30 cell as a direct two-gate netlist:
/// `NS = L XOR (S OR R)`, inputs ordered `[L, S, R]`.
pub fn rule30_cell() -> Netlist {
    let mut n = Netlist::new(3);
    let or = n.push(Gate::Or(1, 2));
    let out = n.push(Gate::Xor(0, or));
    n.set_outputs(vec![out]);
    n
}

/// The Rule-30 cell mapped onto NAND/inverter primitives only, as a
/// compact-CMOS alternative (XOR = 4 NAND; OR = NAND of inverters).
pub fn rule30_cell_nand() -> Netlist {
    let mut n = Netlist::new(3);
    // OR(s, r) = NAND(NOT s, NOT r)
    let ns = n.push(Gate::Not(1));
    let nr = n.push(Gate::Not(2));
    let or = n.push(Gate::Nand(ns, nr));
    // XOR(l, or) with 4 NANDs.
    let t = n.push(Gate::Nand(0, or));
    let u = n.push(Gate::Nand(0, t));
    let v = n.push(Gate::Nand(or, t));
    let out = n.push(Gate::Nand(u, v));
    n.set_outputs(vec![out]);
    n
}

/// Synthesizes a sum-of-products netlist for an arbitrary elementary
/// rule: shared input inverters, one AND3 per minterm, an OR tree.
///
/// Constant rules (0 minterms or 8 minterms) synthesize to a constant
/// via `XNOR(l, l)` / `XOR(l, l)` so every netlist has at least one gate.
pub fn synthesize_rule(rule: ElementaryRule) -> Netlist {
    let mut n = Netlist::new(3);
    let minterms: Vec<u8> = (0..8u8)
        .filter(|&i| (rule.number() >> i) & 1 == 1)
        .collect();
    if minterms.is_empty() {
        let z = n.push(Gate::Xor(0, 0));
        n.set_outputs(vec![z]);
        return n;
    }
    if minterms.len() == 8 {
        let one = n.push(Gate::Xnor(0, 0));
        n.set_outputs(vec![one]);
        return n;
    }
    let nl = n.push(Gate::Not(0));
    let ns = n.push(Gate::Not(1));
    let nr = n.push(Gate::Not(2));
    let lit = |idx: u8, bit: u8, pos: usize, neg: usize| if idx & bit != 0 { pos } else { neg };
    let mut terms = Vec::new();
    for &m in &minterms {
        let a = lit(m, 4, 0, nl);
        let b = lit(m, 2, 1, ns);
        let c = lit(m, 1, 2, nr);
        terms.push(n.push(Gate::And3(a, b, c)));
    }
    // OR-reduce the terms.
    while terms.len() > 1 {
        let mut next = Vec::new();
        for pair in terms.chunks(2) {
            if pair.len() == 2 {
                next.push(n.push(Gate::Or(pair[0], pair[1])));
            } else {
                next.push(pair[0]);
            }
        }
        terms = next;
    }
    n.set_outputs(vec![terms[0]]);
    n
}

/// Exhaustively checks a 3-input, 1-output netlist against a rule.
/// Returns the first failing `(l, s, r)` pattern, or `None` on success.
pub fn check_against_rule(netlist: &Netlist, rule: ElementaryRule) -> Option<(bool, bool, bool)> {
    for idx in 0..8u8 {
        let l = idx & 4 != 0;
        let s = idx & 2 != 0;
        let r = idx & 1 != 0;
        if netlist.eval(&[l, s, r]) != vec![rule.next(l, s, r)] {
            return Some((l, s, r));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_cell_implements_rule_30() {
        assert_eq!(
            check_against_rule(&rule30_cell(), ElementaryRule::RULE_30),
            None
        );
    }

    #[test]
    fn nand_only_cell_implements_rule_30() {
        let cell = rule30_cell_nand();
        assert_eq!(check_against_rule(&cell, ElementaryRule::RULE_30), None);
        // NAND mapping uses exactly 5 NANDs + 2 inverters.
        assert_eq!(cell.gate_count(), 7);
    }

    #[test]
    fn synthesizer_covers_all_256_rules() {
        for number in 0..=255u8 {
            let rule = ElementaryRule::new(number);
            let net = synthesize_rule(rule);
            assert_eq!(
                check_against_rule(&net, rule),
                None,
                "synthesized netlist wrong for rule {number}"
            );
        }
    }

    #[test]
    fn equivalence_checker_catches_wrong_netlist() {
        // A netlist computing rule 90 (L XOR R) is not rule 30.
        let mut n = Netlist::new(3);
        let out = n.push(Gate::Xor(0, 2));
        n.set_outputs(vec![out]);
        assert!(check_against_rule(&n, ElementaryRule::RULE_30).is_some());
        assert_eq!(check_against_rule(&n, ElementaryRule::RULE_90), None);
    }

    #[test]
    fn transistor_counts_accumulate() {
        let cell = rule30_cell();
        // OR (6T) + XOR (6T).
        assert_eq!(cell.transistor_count(), 12);
        assert!(rule30_cell_nand().transistor_count() > 0);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_reference_panics() {
        let mut n = Netlist::new(2);
        n.push(Gate::And(0, 5));
    }

    #[test]
    #[should_panic(expected = "wrong number of inputs")]
    fn eval_with_wrong_arity_panics() {
        rule30_cell().eval(&[true, false]);
    }
}
