//! Sparse-recovery algorithms for compressed sensing, behind one
//! [`Solver`] trait.
//!
//! The paper's decoder is "convex optimization" in one sentence; this
//! crate supplies the whole menagerie the experiments need, all running
//! matrix-free over [`tepics_cs::LinearOperator`] and all implementing
//! the object-safe [`Solver`] trait, so a host can swap algorithms per
//! workload behind `&dyn Solver` without touching its pipeline:
//!
//! * [`Fista`] / [`Ista`] — proximal-gradient ℓ1 solvers (LASSO), the
//!   workhorse for full-frame reconstruction.
//! * [`Omp`] — orthogonal matching pursuit with incremental Cholesky,
//!   the standard block-based decoder.
//! * [`CoSaMP`](cosamp::CoSaMp) — compressive sampling matching pursuit.
//! * [`Iht`] — (normalized) iterative hard thresholding.
//! * [`Amp`] — approximate message passing with Onsager correction
//!   (fast on i.i.d.-like ensembles; heuristic on structured ones).
//! * [`Cgls`] — CGLS least squares, also the engine behind
//!   restricted re-fits.
//! * [`Debias`] — any solver above, wrapped with the
//!   CGLS support re-fit of [`debias`] as one composite algorithm.
//!
//! # The trait + workspace contract
//!
//! Every solver returns a [`Recovery`] with convergence diagnostics and
//! is deterministic given its inputs. Three guarantees hold across the
//! whole roster and are pinned down by property tests:
//!
//! 1. **Trait transparency.** `Solver::solve_with` through a
//!    `&dyn Solver` is bit-identical to the concrete type's inherent
//!    `solve`/`solve_with`.
//! 2. **Workspace transparency.** Every solver takes a
//!    [`SolverWorkspace`] and resets the buffers it uses to the exact
//!    state a fresh allocation would have, so warm solves are
//!    bit-identical to cold ones — and allocate nothing inside the
//!    solver loop once warm. This covers the greedy pursuits (gathered
//!    columns, growing Cholesky) and the nested CGLS of CoSaMP and the
//!    debias pass, which run on a dedicated `lsq_*` buffer set so
//!    nesting never clobbers the outer solver's state.
//! 3. **Capability metadata.** [`Solver::caps`] tells a host what the
//!    solver needs to run fast: the seed of its internal operator-norm
//!    power iteration (memoize it per solver — seeds differ, and mixing
//!    estimates across solvers would change results) and whether it is
//!    column-hungry (attach a
//!    [`ColumnMatrix`](tepics_cs::colview::ColumnMatrix) view so column
//!    extraction and restricted least squares stop re-deriving columns).
//!
//! # Examples
//!
//! Any solver through the trait:
//!
//! ```
//! use tepics_cs::DenseMatrix;
//! use tepics_cs::LinearOperator;
//! use tepics_recovery::{Omp, Solver, SolverWorkspace};
//!
//! // A tiny exactly-sparse problem: x has 2 nonzeros, 8 measurements.
//! let a = DenseMatrix::from_fn(8, 16, |r, c| {
//!     ((r * 31 + c * 17 + (r * c) % 7) % 13) as f64 / 13.0 - 0.5
//! });
//! let mut x = vec![0.0; 16];
//! x[3] = 1.5;
//! x[11] = -0.7;
//! let y = a.apply_vec(&x);
//! let solver: &dyn Solver = &Omp::new(2);
//! let mut ws = SolverWorkspace::new();
//! let rec = solver.solve_with(&a, &y, &mut ws).unwrap();
//! assert!((rec.coefficients[3] - 1.5).abs() < 1e-6);
//! assert!((rec.coefficients[11] + 0.7).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amp;
pub mod cg;
pub mod cosamp;
pub mod debias;
pub mod fista;
pub mod iht;
pub mod ista;
pub mod omp;
pub mod shrink;
pub mod solver;
pub mod workspace;

pub use amp::Amp;
pub use cg::Cgls;
pub use cosamp::CoSaMp;
pub use debias::Debias;
pub use fista::Fista;
pub use iht::Iht;
pub use ista::Ista;
pub use omp::Omp;
pub use solver::{SolveResult, Solver, SolverCaps};
pub use workspace::SolverWorkspace;

use std::fmt;

/// Convergence diagnostics attached to every solver result.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Iterations (or atoms, for greedy methods) actually used.
    pub iterations: usize,
    /// Final residual norm `‖A α − y‖₂`.
    pub residual_norm: f64,
    /// `true` if the stopping criterion was met before the iteration cap.
    pub converged: bool,
}

/// A recovered coefficient vector plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Recovered coefficients (length = operator columns).
    pub coefficients: Vec<f64>,
    /// Convergence diagnostics.
    pub stats: SolveStats,
}

/// Errors shared by the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The measurement vector length does not match the operator.
    DimensionMismatch {
        /// Expected length (operator rows).
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// A solver parameter is outside its valid range.
    InvalidParameter(String),
    /// The solver broke down numerically (e.g. dependent atoms beyond
    /// recoverable handling).
    Breakdown(String),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "measurement length {actual} does not match operator rows {expected}"
                )
            }
            RecoveryError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            RecoveryError::Breakdown(msg) => write!(f, "numerical breakdown: {msg}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

pub(crate) fn check_dims(rows: usize, y: &[f64]) -> Result<(), RecoveryError> {
    if y.len() != rows {
        Err(RecoveryError::DimensionMismatch {
            expected: rows,
            actual: y.len(),
        })
    } else {
        Ok(())
    }
}
