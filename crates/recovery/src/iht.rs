//! (Normalized) iterative hard thresholding.
//!
//! `α ← H_k(α + μ Aᵀ(y − Aα))` with the adaptive step of Blumensath &
//! Davies' NIHT: `μ = ‖g_S‖² / ‖A g_S‖²` computed on the current
//! support. Cheap per iteration and the natural solver when the target
//! sparsity is known (e.g. star fields with a known source count).

use crate::shrink::hard_threshold_top_k;
use crate::solver::{norm_seeds, SolveResult, Solver, SolverCaps};
use crate::workspace::SolverWorkspace;
use crate::{check_dims, Recovery, RecoveryError, SolveStats};
use tepics_cs::op::{self, LinearOperator};

/// IHT solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Iht {
    sparsity: usize,
    max_iter: usize,
    tol: f64,
    normalized: bool,
    step: Option<f64>,
}

impl Iht {
    /// Creates a solver targeting `sparsity` nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity == 0`.
    pub fn new(sparsity: usize) -> Self {
        assert!(sparsity > 0, "sparsity must be positive");
        Iht {
            sparsity,
            max_iter: 300,
            tol: 1e-7,
            normalized: true,
            step: None,
        }
    }

    /// Overrides the fallback gradient step `1/L` (skips the internal
    /// norm estimation — callers that memoize the seeded power iteration
    /// pass its result back through here). The adaptive NIHT step still
    /// applies on supported iterates; this only replaces the fallback.
    pub fn step(&mut self, step: f64) -> &mut Self {
        self.step = Some(step);
        self
    }

    /// Iteration cap.
    pub fn max_iter(&mut self, n: usize) -> &mut Self {
        self.max_iter = n;
        self
    }

    /// Relative-change stopping tolerance.
    pub fn tol(&mut self, tol: f64) -> &mut Self {
        self.tol = tol;
        self
    }

    /// Disables the adaptive NIHT step (uses `μ = 1/‖A‖²` instead).
    pub fn fixed_step(&mut self) -> &mut Self {
        self.normalized = false;
        self
    }

    /// Runs the solver with freshly allocated buffers.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::DimensionMismatch`] if `y` does not match
    /// the operator.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
    ) -> Result<Recovery, RecoveryError> {
        self.solve_with(a, y, &mut SolverWorkspace::new())
    }

    /// Runs the solver reusing `workspace` buffers; results are
    /// bit-identical to [`Iht::solve`].
    ///
    /// # Errors
    ///
    /// Same as [`Iht::solve`].
    // tidy:alloc-free
    pub fn solve_with<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> Result<Recovery, RecoveryError> {
        check_dims(a.rows(), y)?;
        let n = a.cols();
        let fallback_step = match self.step {
            Some(s) if s > 0.0 => s,
            Some(_) => {
                return Err(RecoveryError::InvalidParameter(
                    "step must be positive".into(),
                ))
            }
            None => {
                let norm = op::operator_norm_est(a, 30, norm_seeds::IHT);
                if norm == 0.0 {
                    return Ok(Recovery {
                        // tidy:allow(alloc: zero-operator early exit, before the iteration loop)
                        coefficients: vec![0.0; n],
                        stats: SolveStats {
                            iterations: 0,
                            residual_norm: op::norm2(y),
                            converged: true,
                        },
                    });
                }
                1.0 / (norm * norm * 1.05)
            }
        };
        workspace.prepare(a.rows(), n);
        let SolverWorkspace {
            alpha,
            alpha_prev: prev,
            z: g_s,
            grad,
            resid,
            rows_tmp: ag,
            ..
        } = workspace;
        resid.copy_from_slice(y); // r = y − Aα, starts at y
        let mut iterations = 0;
        let mut converged = false;
        for it in 0..self.max_iter {
            iterations = it + 1;
            a.apply_adjoint(resid, grad);
            // NIHT step: restrict gradient to the current support (or the
            // full gradient on the first pass when support is empty).
            let mu = if self.normalized {
                g_s.copy_from_slice(grad);
                let has_support = alpha.iter().any(|&v| v != 0.0);
                if has_support {
                    for (g, &v) in g_s.iter_mut().zip(alpha.iter()) {
                        if v == 0.0 {
                            *g = 0.0;
                        }
                    }
                }
                let g_norm2 = op::dot(g_s, g_s);
                if g_norm2 == 0.0 {
                    fallback_step
                } else {
                    a.apply(g_s, ag);
                    let denom = op::dot(ag, ag);
                    if denom == 0.0 {
                        fallback_step
                    } else {
                        g_norm2 / denom
                    }
                }
            } else {
                fallback_step
            };
            prev.copy_from_slice(alpha);
            for i in 0..n {
                alpha[i] += mu * grad[i];
            }
            hard_threshold_top_k(alpha, self.sparsity);
            // Refresh residual.
            a.apply(alpha, ag);
            for (r, (&yi, &av)) in resid.iter_mut().zip(y.iter().zip(ag.iter())) {
                *r = yi - av;
            }
            let mut diff = 0.0;
            let mut nrm = 0.0;
            for i in 0..n {
                let d = alpha[i] - prev[i];
                diff += d * d;
                nrm += alpha[i] * alpha[i];
            }
            if diff.sqrt() <= self.tol * nrm.sqrt().max(1e-12) {
                converged = true;
                break;
            }
        }
        Ok(Recovery {
            // tidy:allow(alloc: the returned coefficient vector, once per solve)
            coefficients: alpha.clone(),
            stats: SolveStats {
                iterations,
                residual_norm: op::norm2(resid),
                converged,
            },
        })
    }
}

impl Solver for Iht {
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            name: "iht",
            norm_seed: Some(norm_seeds::IHT),
            column_hungry: false,
        }
    }

    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult {
        Iht::solve_with(self, a, y, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    fn gaussian_problem(
        rows: usize,
        cols: usize,
        k: usize,
        seed: u64,
    ) -> (DenseMatrix, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let a = DenseMatrix::from_fn(rows, cols, |_, _| {
            rng.next_gaussian() / (rows as f64).sqrt()
        });
        let mut x = vec![0.0; cols];
        let mut placed = 0;
        while placed < k {
            let i = rng.next_below(cols as u64) as usize;
            if x[i] == 0.0 {
                x[i] = if rng.next_bool() { 2.0 } else { -2.0 };
                placed += 1;
            }
        }
        let y = a.apply_vec(&x);
        (a, x, y)
    }

    #[test]
    fn recovers_known_sparsity_signal() {
        let (a, x, y) = gaussian_problem(50, 100, 5, 17);
        let rec = Iht::new(5).max_iter(500).solve(&a, &y).unwrap();
        for (i, &xi) in x.iter().enumerate() {
            assert!(
                (rec.coefficients[i] - xi).abs() < 1e-3,
                "coef {i}: {} vs {}",
                rec.coefficients[i],
                xi
            );
        }
    }

    #[test]
    fn solution_is_exactly_k_sparse() {
        let (a, _, y) = gaussian_problem(40, 90, 4, 23);
        let rec = Iht::new(4).solve(&a, &y).unwrap();
        let nnz = rec.coefficients.iter().filter(|&&v| v != 0.0).count();
        assert!(nnz <= 4);
    }

    #[test]
    fn normalized_step_converges_faster_than_fixed() {
        let (a, _, y) = gaussian_problem(60, 120, 6, 31);
        let fast = Iht::new(6).tol(1e-9).max_iter(2000).solve(&a, &y).unwrap();
        let slow = Iht::new(6)
            .fixed_step()
            .tol(1e-9)
            .max_iter(2000)
            .solve(&a, &y)
            .unwrap();
        assert!(
            fast.stats.iterations <= slow.stats.iterations,
            "NIHT {} vs fixed {}",
            fast.stats.iterations,
            slow.stats.iterations
        );
    }

    #[test]
    fn zero_input_returns_zero() {
        let (a, _, _) = gaussian_problem(20, 40, 2, 3);
        let rec = Iht::new(2).solve(&a, &[0.0; 20]).unwrap();
        assert!(rec.coefficients.iter().all(|&v| v == 0.0));
    }
}
