//! CoSaMP — compressive sampling matching pursuit (Needell & Tropp
//! 2009).
//!
//! Per iteration: identify the 2k strongest gradient atoms, merge with
//! the current support, least-squares on the merged support (CGLS),
//! prune back to k. More robust than OMP when atoms are correlated, at
//! the price of larger least-squares subproblems.

use crate::cg::{Cgls, RestrictedOperator};
use crate::shrink::top_k_indices_into;
use crate::solver::{SolveResult, Solver, SolverCaps};
use crate::workspace::SolverWorkspace;
use crate::{check_dims, Recovery, RecoveryError, SolveStats};
use tepics_cs::op::{self, LinearOperator};

/// CoSaMP solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoSaMp {
    sparsity: usize,
    max_iter: usize,
    residual_tol: f64,
}

impl CoSaMp {
    /// Creates a solver targeting `sparsity` nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity == 0`.
    pub fn new(sparsity: usize) -> Self {
        assert!(sparsity > 0, "sparsity must be positive");
        CoSaMp {
            sparsity,
            max_iter: 50,
            residual_tol: 1e-9,
        }
    }

    /// Iteration cap.
    pub fn max_iter(&mut self, n: usize) -> &mut Self {
        self.max_iter = n;
        self
    }

    /// Stops once `‖r‖ ≤ tol · ‖y‖`.
    pub fn residual_tol(&mut self, tol: f64) -> &mut Self {
        self.residual_tol = tol;
        self
    }

    /// Runs the pursuit with freshly allocated buffers.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::DimensionMismatch`] if `y` does not match
    /// the operator.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
    ) -> Result<Recovery, RecoveryError> {
        self.solve_with(a, y, &mut SolverWorkspace::new())
    }

    /// Runs the pursuit reusing `workspace` buffers — the iterate set
    /// for the outer loop and the `lsq_*`/restrict set for the nested
    /// CGLS re-fit, so the whole pursuit allocates nothing once the
    /// workspace is warm. Results are bit-identical to
    /// [`CoSaMp::solve`].
    ///
    /// # Errors
    ///
    /// Same as [`CoSaMp::solve`].
    // tidy:alloc-free
    pub fn solve_with<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> Result<Recovery, RecoveryError> {
        check_dims(a.rows(), y)?;
        let n = a.cols();
        let k = self.sparsity.min(n);
        let y_norm = op::norm2(y);
        workspace.prepare(a.rows(), n);
        let mut iterations = 0;
        let mut converged = y_norm == 0.0;
        let mut last_resid = f64::INFINITY;
        workspace.resid.copy_from_slice(y);
        for it in 0..self.max_iter {
            if converged {
                break;
            }
            iterations = it + 1;
            {
                let SolverWorkspace {
                    alpha,
                    grad,
                    resid,
                    candidate,
                    ..
                } = &mut *workspace;
                a.apply_adjoint(resid, grad);
                // Candidate support: 2k strongest gradient atoms ∪ current.
                top_k_indices_into(grad, 2 * k, candidate);
                for (j, &v) in alpha.iter().enumerate() {
                    if v != 0.0 {
                        candidate.push(j);
                    }
                }
                candidate.sort_unstable();
                candidate.dedup();
            }
            // Least squares on the candidate support, through the
            // workspace-owned support/scratch buffers (returned below).
            let mut support = std::mem::take(&mut workspace.support);
            support.clear();
            support.extend_from_slice(&workspace.candidate);
            let restricted = RestrictedOperator::with_scratch(
                a,
                support,
                std::mem::take(&mut workspace.restrict_in),
                std::mem::take(&mut workspace.restrict_out),
            );
            let ls = Cgls::new(200, 1e-12).solve_into(&restricted, y, workspace);
            let (support, full_in, full_out) = restricted.into_parts();
            workspace.support = support;
            workspace.restrict_in = full_in;
            workspace.restrict_out = full_out;
            ls?;
            let SolverWorkspace {
                alpha,
                resid,
                rows_tmp: fit,
                candidate,
                keep,
                lsq_x: ls_coeffs,
                ..
            } = &mut *workspace;
            // Prune to the k largest coefficients.
            top_k_indices_into(ls_coeffs, k, keep);
            alpha.fill(0.0);
            for &local in keep.iter() {
                alpha[candidate[local]] = ls_coeffs[local];
            }
            // Update residual.
            a.apply(alpha, fit);
            for (r, (&yi, &fi)) in resid.iter_mut().zip(y.iter().zip(fit.iter())) {
                *r = yi - fi;
            }
            let rn = op::norm2(resid);
            if rn <= self.residual_tol * y_norm.max(1e-300) {
                converged = true;
            }
            // Stall detection: no meaningful progress.
            if (last_resid - rn).abs() <= 1e-12 * y_norm.max(1e-300) {
                break;
            }
            last_resid = rn;
        }
        Ok(Recovery {
            // tidy:allow(alloc: the returned coefficient vector, once per solve)
            coefficients: workspace.alpha.clone(),
            stats: SolveStats {
                iterations,
                residual_norm: op::norm2(&workspace.resid),
                converged,
            },
        })
    }
}

impl Solver for CoSaMp {
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            name: "cosamp",
            norm_seed: None,
            column_hungry: true,
        }
    }

    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult {
        CoSaMp::solve_with(self, a, y, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    fn gaussian_problem(
        rows: usize,
        cols: usize,
        k: usize,
        seed: u64,
    ) -> (DenseMatrix, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let a = DenseMatrix::from_fn(rows, cols, |_, _| {
            rng.next_gaussian() / (rows as f64).sqrt()
        });
        let mut x = vec![0.0; cols];
        let mut placed = 0;
        while placed < k {
            let i = rng.next_below(cols as u64) as usize;
            if x[i] == 0.0 {
                x[i] = if rng.next_bool() { 1.0 } else { -1.0 } * (1.0 + rng.next_f64());
                placed += 1;
            }
        }
        let y = a.apply_vec(&x);
        (a, x, y)
    }

    #[test]
    fn exact_recovery_on_well_posed_problems() {
        for seed in [2u64, 4, 6] {
            let (a, x, y) = gaussian_problem(60, 128, 6, seed);
            let rec = CoSaMp::new(6).solve(&a, &y).unwrap();
            assert!(rec.stats.converged, "seed {seed}");
            for (i, &xi) in x.iter().enumerate() {
                assert!(
                    (rec.coefficients[i] - xi).abs() < 1e-6,
                    "seed {seed} coef {i}"
                );
            }
        }
    }

    #[test]
    fn solution_is_k_sparse() {
        let (a, _, y) = gaussian_problem(40, 100, 5, 12);
        let rec = CoSaMp::new(5).solve(&a, &y).unwrap();
        assert!(rec.coefficients.iter().filter(|&&v| v != 0.0).count() <= 5);
    }

    #[test]
    fn zero_measurements_converge_immediately() {
        let (a, _, _) = gaussian_problem(20, 50, 3, 1);
        let rec = CoSaMp::new(3).solve(&a, &[0.0; 20]).unwrap();
        assert!(rec.stats.converged);
        assert_eq!(rec.stats.iterations, 0);
    }

    #[test]
    fn dimension_mismatch_reported() {
        let (a, _, _) = gaussian_problem(20, 50, 3, 1);
        assert!(CoSaMp::new(3).solve(&a, &[0.0; 19]).is_err());
    }
}
