//! Thresholding primitives shared by the solvers.

/// Soft-thresholding (the proximal operator of `t‖·‖₁`):
/// `sign(v) · max(|v| − t, 0)`, applied in place.
///
/// # Examples
///
/// ```
/// use tepics_recovery::shrink::soft_threshold;
///
/// let mut v = vec![3.0, -0.5, 1.0];
/// soft_threshold(&mut v, 1.0);
/// assert_eq!(v, vec![2.0, 0.0, 0.0]);
/// ```
pub fn soft_threshold(v: &mut [f64], t: f64) {
    debug_assert!(t >= 0.0);
    for x in v {
        let mag = x.abs() - t;
        *x = if mag > 0.0 { x.signum() * mag } else { 0.0 };
    }
}

/// Keeps only the `k` largest-magnitude entries, zeroing the rest
/// (the projection onto the ℓ0 ball), in place.
pub fn hard_threshold_top_k(v: &mut [f64], k: usize) {
    if k >= v.len() {
        return;
    }
    if k == 0 {
        v.fill(0.0);
        return;
    }
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.select_nth_unstable_by(k - 1, |&a, &b| v[b].abs().total_cmp(&v[a].abs()));
    // idx[k..] now holds the indices of the smaller magnitudes.
    for &i in &idx[k..] {
        v[i] = 0.0;
    }
}

/// Indices of the `k` largest-magnitude entries (unsorted).
pub fn top_k_indices(v: &[f64], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    top_k_indices_into(v, k, &mut out);
    out
}

/// [`top_k_indices`] into a caller-owned buffer (cleared first);
/// identical result, allocation-free once the buffer is warm.
pub fn top_k_indices_into(v: &[f64], k: usize, out: &mut Vec<usize>) {
    let k = k.min(v.len());
    out.clear();
    out.extend(0..v.len());
    if k < v.len() && k > 0 {
        out.select_nth_unstable_by(k - 1, |&a, &b| v[b].abs().total_cmp(&v[a].abs()));
    }
    out.truncate(k);
}

/// Indices of all nonzero entries.
pub fn support(v: &[f64]) -> Vec<usize> {
    let mut out = Vec::new();
    support_into(v, &mut out);
    out
}

/// [`support`] into a caller-owned buffer (cleared first); identical
/// result, allocation-free once the buffer is warm.
pub fn support_into(v: &[f64], out: &mut Vec<usize>) {
    out.clear();
    out.extend(
        v.iter()
            .enumerate()
            .filter_map(|(i, &x)| (x != 0.0).then_some(i)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_threshold_shrinks_toward_zero() {
        let mut v = vec![2.0, -2.0, 0.3, -0.3, 0.0];
        soft_threshold(&mut v, 0.5);
        assert_eq!(v, vec![1.5, -1.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn soft_threshold_zero_is_identity() {
        let mut v = vec![1.0, -2.0];
        soft_threshold(&mut v, 0.0);
        assert_eq!(v, vec![1.0, -2.0]);
    }

    #[test]
    fn hard_threshold_keeps_k_largest() {
        let mut v = vec![0.1, -5.0, 3.0, 0.2, -4.0];
        hard_threshold_top_k(&mut v, 2);
        assert_eq!(v, vec![0.0, -5.0, 0.0, 0.0, -4.0]);
    }

    #[test]
    fn hard_threshold_edge_cases() {
        let mut v = vec![1.0, 2.0];
        hard_threshold_top_k(&mut v, 5);
        assert_eq!(v, vec![1.0, 2.0]);
        hard_threshold_top_k(&mut v, 0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn top_k_indices_match_hard_threshold() {
        let v = vec![0.1, -5.0, 3.0, 0.2, -4.0];
        let mut idx = top_k_indices(&v, 3);
        idx.sort_unstable();
        assert_eq!(idx, vec![1, 2, 4]);
    }

    #[test]
    fn support_finds_nonzeros() {
        assert_eq!(support(&[0.0, 1.0, 0.0, -2.0]), vec![1, 3]);
        assert!(support(&[0.0; 4]).is_empty());
    }
}
