//! Support debiasing.
//!
//! ℓ1 solvers shrink every coefficient toward zero by design; once the
//! support is identified, re-fitting those coefficients by unpenalized
//! least squares removes the bias. This is the standard final step of a
//! LASSO-based CS decoder and typically buys 1–3 dB of PSNR — the
//! pipeline applies it by default.

use crate::cg::{Cgls, RestrictedOperator};
use crate::shrink::{support, top_k_indices};
use crate::{Recovery, RecoveryError, SolveStats};
use tepics_cs::op::{self, LinearOperator};

/// Re-fits the nonzero coefficients of `recovery` by least squares on
/// their support, leaving zeros untouched.
///
/// If the support is larger than `max_support` (defensive cap against
/// degenerate λ choices), only the largest `max_support` coefficients
/// are refit.
///
/// # Errors
///
/// Propagates CGLS dimension errors (which cannot occur when `recovery`
/// came from the same operator).
pub fn debias<A: LinearOperator + ?Sized>(
    a: &A,
    y: &[f64],
    recovery: &Recovery,
    max_support: usize,
) -> Result<Recovery, RecoveryError> {
    let supp_full = support(&recovery.coefficients);
    if supp_full.is_empty() {
        return Ok(recovery.clone());
    }
    let supp = if supp_full.len() > max_support {
        let mut keep = top_k_indices(&recovery.coefficients, max_support);
        keep.sort_unstable();
        keep
    } else {
        supp_full
    };
    let restricted = RestrictedOperator::new(a, supp.clone());
    let ls = Cgls::new(300, 1e-12).solve(&restricted, y)?;
    let mut coeffs = vec![0.0; a.cols()];
    for (&j, &v) in supp.iter().zip(&ls.coefficients) {
        coeffs[j] = v;
    }
    let resid = op::sub(&a.apply_vec(&coeffs), y);
    Ok(Recovery {
        coefficients: coeffs,
        stats: SolveStats {
            iterations: recovery.stats.iterations + ls.stats.iterations,
            residual_norm: op::norm2(&resid),
            converged: recovery.stats.converged,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fista;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    #[test]
    fn debias_removes_shrinkage() {
        let mut rng = SplitMix64::new(21);
        let a = DenseMatrix::from_fn(40, 80, |_, _| rng.next_gaussian() / 40f64.sqrt());
        let mut x = vec![0.0; 80];
        x[12] = 3.0;
        x[55] = -1.5;
        let y = a.apply_vec(&x);
        let biased = Fista::new()
            .lambda_ratio(0.1) // heavy shrinkage on purpose
            .max_iter(2000)
            .tol(1e-9)
            .solve(&a, &y)
            .unwrap();
        let fixed = debias(&a, &y, &biased, 80).unwrap();
        // The debiased fit must have smaller residual.
        assert!(fixed.stats.residual_norm <= biased.stats.residual_norm + 1e-12);
        // And the big coefficient should be restored to ≈3.0.
        let err_biased = (biased.coefficients[12] - 3.0).abs();
        let err_fixed = (fixed.coefficients[12] - 3.0).abs();
        assert!(
            err_fixed < err_biased,
            "debias did not improve coefficient: {err_fixed} vs {err_biased}"
        );
        assert!(err_fixed < 1e-6);
    }

    #[test]
    fn empty_support_passes_through() {
        let a = DenseMatrix::identity(4);
        let zero = Recovery {
            coefficients: vec![0.0; 4],
            stats: SolveStats {
                iterations: 1,
                residual_norm: 1.0,
                converged: true,
            },
        };
        let out = debias(&a, &[1.0, 0.0, 0.0, 0.0], &zero, 4).unwrap();
        assert_eq!(out.coefficients, zero.coefficients);
    }

    #[test]
    fn support_cap_is_respected() {
        let mut rng = SplitMix64::new(33);
        let a = DenseMatrix::from_fn(10, 20, |_, _| rng.next_gaussian());
        let rec = Recovery {
            coefficients: (0..20).map(|i| (i + 1) as f64 / 20.0).collect(),
            stats: SolveStats {
                iterations: 0,
                residual_norm: 0.0,
                converged: true,
            },
        };
        let y: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        let out = debias(&a, &y, &rec, 5).unwrap();
        assert!(out.coefficients.iter().filter(|&&v| v != 0.0).count() <= 5);
    }
}
