//! Support debiasing.
//!
//! ℓ1 solvers shrink every coefficient toward zero by design; once the
//! support is identified, re-fitting those coefficients by unpenalized
//! least squares removes the bias. This is the standard final step of a
//! LASSO-based CS decoder and typically buys 1–3 dB of PSNR — the
//! pipeline applies it by default.
//!
//! Two entry points: the [`debias`] function re-fits an existing
//! [`Recovery`] ([`debias_with`] reuses workspace buffers, so a
//! streaming decoder's per-frame debias pass — a CGLS solve on the
//! support — allocates nothing once warm); the [`Debias`] wrapper makes
//! `inner solve → debias` itself a [`Solver`], so hosts can treat the
//! debiased pipeline as just another swappable algorithm.

use crate::cg::{Cgls, RestrictedOperator};
use crate::shrink::{support_into, top_k_indices_into};
use crate::solver::{SolveResult, Solver, SolverCaps};
use crate::workspace::SolverWorkspace;
use crate::{Recovery, RecoveryError, SolveStats};
use tepics_cs::op::LinearOperator;

/// Re-fits the nonzero coefficients of `recovery` by least squares on
/// their support, leaving zeros untouched.
///
/// If the support is larger than `max_support` (defensive cap against
/// degenerate λ choices), only the largest `max_support` coefficients
/// are refit.
///
/// # Errors
///
/// Propagates CGLS dimension errors (which cannot occur when `recovery`
/// came from the same operator).
pub fn debias<A: LinearOperator + ?Sized>(
    a: &A,
    y: &[f64],
    recovery: &Recovery,
    max_support: usize,
) -> Result<Recovery, RecoveryError> {
    debias_with(a, y, recovery, max_support, &mut SolverWorkspace::new())
}

/// [`debias`] reusing `workspace` buffers for the support scan, the
/// restricted operator scratch, and the CGLS vectors; results are
/// bit-identical to [`debias`] and the pass allocates nothing once the
/// workspace is warm (beyond the returned coefficient vector).
///
/// # Errors
///
/// Same as [`debias`].
pub fn debias_with<A: LinearOperator + ?Sized>(
    a: &A,
    y: &[f64],
    recovery: &Recovery,
    max_support: usize,
    workspace: &mut SolverWorkspace,
) -> Result<Recovery, RecoveryError> {
    let mut supp = std::mem::take(&mut workspace.support);
    support_into(&recovery.coefficients, &mut supp);
    if supp.is_empty() {
        workspace.support = supp;
        return Ok(recovery.clone());
    }
    if supp.len() > max_support {
        top_k_indices_into(&recovery.coefficients, max_support, &mut supp);
        supp.sort_unstable();
    }
    let restricted = RestrictedOperator::with_scratch(
        a,
        supp,
        std::mem::take(&mut workspace.restrict_in),
        std::mem::take(&mut workspace.restrict_out),
    );
    let ls = Cgls::new(300, 1e-12).solve_into(&restricted, y, workspace);
    let (supp, full_in, full_out) = restricted.into_parts();
    workspace.restrict_in = full_in;
    workspace.restrict_out = full_out;
    let ls = match ls {
        Ok(stats) => stats,
        Err(e) => {
            workspace.support = supp;
            return Err(e);
        }
    };
    let mut coeffs = vec![0.0; a.cols()];
    for (&j, &v) in supp.iter().zip(&workspace.lsq_x) {
        coeffs[j] = v;
    }
    workspace.support = supp;
    // Residual of the debiased fit, through the rows_tmp buffer.
    let resid = &mut workspace.rows_tmp;
    resid.clear();
    resid.resize(a.rows(), 0.0);
    a.apply(&coeffs, resid);
    let mut rr = 0.0;
    for (ri, &yi) in resid.iter().zip(y) {
        let d = ri - yi;
        rr += d * d;
    }
    Ok(Recovery {
        coefficients: coeffs,
        stats: SolveStats {
            iterations: recovery.stats.iterations + ls.iterations,
            residual_norm: rr.sqrt(),
            converged: recovery.stats.converged,
        },
    })
}

/// A [`Solver`] that runs an inner solver and then debiases its support
/// (cap `max_support`) — the paper pipeline's default recovery, as a
/// first-class swappable algorithm.
///
/// # Examples
///
/// ```
/// use tepics_cs::{DenseMatrix, LinearOperator};
/// use tepics_recovery::{debias::Debias, Fista, Solver};
/// use tepics_util::SplitMix64;
///
/// let mut rng = SplitMix64::new(3);
/// let a = DenseMatrix::from_fn(20, 40, |_, _| rng.next_gaussian() / 20f64.sqrt());
/// let mut x = vec![0.0; 40];
/// x[5] = 2.0;
/// let y = a.apply_vec(&x);
/// let mut fista = Fista::new();
/// fista.lambda_ratio(0.1).max_iter(1000);
/// let debiased = Debias::new(&fista, 10);
/// let rec = Solver::solve(&debiased, &a, &y).unwrap();
/// assert!((rec.coefficients[5] - 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Debias<'a> {
    inner: &'a dyn Solver,
    max_support: usize,
}

impl<'a> Debias<'a> {
    /// Wraps `inner`, debiasing at most `max_support` coefficients.
    pub fn new(inner: &'a dyn Solver, max_support: usize) -> Self {
        Debias { inner, max_support }
    }
}

impl Solver for Debias<'_> {
    fn caps(&self) -> SolverCaps {
        // `column_hungry` is inherited deliberately: the wrapper's own
        // column work is one support-restricted CGLS re-fit, which does
        // not amortize a full materialization (see the field docs) —
        // though the re-fit does run through a view when the operator
        // already carries one.
        SolverCaps {
            name: "debias",
            ..self.inner.caps()
        }
    }

    // tidy:alloc-free
    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult {
        let rec = self.inner.solve_with(a, y, workspace)?;
        debias_with(a, y, &rec, self.max_support, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fista;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    #[test]
    fn debias_removes_shrinkage() {
        let mut rng = SplitMix64::new(21);
        let a = DenseMatrix::from_fn(40, 80, |_, _| rng.next_gaussian() / 40f64.sqrt());
        let mut x = vec![0.0; 80];
        x[12] = 3.0;
        x[55] = -1.5;
        let y = a.apply_vec(&x);
        let biased = Fista::new()
            .lambda_ratio(0.1) // heavy shrinkage on purpose
            .max_iter(2000)
            .tol(1e-9)
            .solve(&a, &y)
            .unwrap();
        let fixed = debias(&a, &y, &biased, 80).unwrap();
        // The debiased fit must have smaller residual.
        assert!(fixed.stats.residual_norm <= biased.stats.residual_norm + 1e-12);
        // And the big coefficient should be restored to ≈3.0.
        let err_biased = (biased.coefficients[12] - 3.0).abs();
        let err_fixed = (fixed.coefficients[12] - 3.0).abs();
        assert!(
            err_fixed < err_biased,
            "debias did not improve coefficient: {err_fixed} vs {err_biased}"
        );
        assert!(err_fixed < 1e-6);
    }

    #[test]
    fn wrapper_equals_manual_pipeline() {
        let mut rng = SplitMix64::new(22);
        let a = DenseMatrix::from_fn(30, 60, |_, _| rng.next_gaussian() / 30f64.sqrt());
        let mut x = vec![0.0; 60];
        x[7] = 1.5;
        x[31] = -2.5;
        let y = a.apply_vec(&x);
        let mut fista = Fista::new();
        fista.lambda_ratio(0.05).max_iter(800);
        let manual = {
            let first = fista.solve(&a, &y).unwrap();
            debias(&a, &y, &first, 30).unwrap()
        };
        let wrapped = Solver::solve(&Debias::new(&fista, 30), &a, &y).unwrap();
        assert_eq!(manual, wrapped, "wrapper must match the manual pipeline");
        assert_eq!(Debias::new(&fista, 30).caps().name, "debias");
    }

    #[test]
    fn empty_support_passes_through() {
        let a = DenseMatrix::identity(4);
        let zero = Recovery {
            coefficients: vec![0.0; 4],
            stats: SolveStats {
                iterations: 1,
                residual_norm: 1.0,
                converged: true,
            },
        };
        let out = debias(&a, &[1.0, 0.0, 0.0, 0.0], &zero, 4).unwrap();
        assert_eq!(out.coefficients, zero.coefficients);
    }

    #[test]
    fn support_cap_is_respected() {
        let mut rng = SplitMix64::new(33);
        let a = DenseMatrix::from_fn(10, 20, |_, _| rng.next_gaussian());
        let rec = Recovery {
            coefficients: (0..20).map(|i| (i + 1) as f64 / 20.0).collect(),
            stats: SolveStats {
                iterations: 0,
                residual_norm: 0.0,
                converged: true,
            },
        };
        let y: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        let out = debias(&a, &y, &rec, 5).unwrap();
        assert!(out.coefficients.iter().filter(|&&v| v != 0.0).count() <= 5);
    }
}
