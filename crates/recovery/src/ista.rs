//! ISTA — plain proximal gradient, kept as the ablation baseline for
//! FISTA's momentum (the `warmup`/solver experiments report both).

use crate::shrink::soft_threshold;
use crate::solver::{norm_seeds, SolveResult, Solver, SolverCaps};
use crate::workspace::SolverWorkspace;
use crate::{check_dims, Recovery, RecoveryError, SolveStats};
use tepics_cs::op::{self, LinearOperator};

/// ISTA solver configuration (non-consuming builder).
///
/// Same objective and parameters as [`crate::Fista`], without momentum:
/// `α ← soft(α − (1/L)Aᵀ(Aα − y), λ/L)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ista {
    lambda_ratio: Option<f64>,
    lambda_abs: Option<f64>,
    max_iter: usize,
    tol: f64,
    step: Option<f64>,
}

impl Ista {
    /// Creates a solver with defaults matching [`crate::Fista::new`].
    pub fn new() -> Self {
        Ista {
            lambda_ratio: Some(0.02),
            lambda_abs: None,
            max_iter: 400,
            tol: 1e-6,
            step: None,
        }
    }

    /// Overrides the gradient step `1/L` (skips the internal norm
    /// estimation — callers that memoize the seeded power iteration pass
    /// its result back through here).
    pub fn step(&mut self, step: f64) -> &mut Self {
        self.step = Some(step);
        self
    }

    /// Sets an absolute λ.
    pub fn lambda(&mut self, lambda: f64) -> &mut Self {
        self.lambda_abs = Some(lambda);
        self.lambda_ratio = None;
        self
    }

    /// Sets λ as a fraction of `‖Aᵀy‖∞`.
    pub fn lambda_ratio(&mut self, ratio: f64) -> &mut Self {
        self.lambda_ratio = Some(ratio);
        self.lambda_abs = None;
        self
    }

    /// Iteration cap.
    pub fn max_iter(&mut self, n: usize) -> &mut Self {
        self.max_iter = n;
        self
    }

    /// Relative-change stopping tolerance.
    pub fn tol(&mut self, tol: f64) -> &mut Self {
        self.tol = tol;
        self
    }

    /// Runs the solver with freshly allocated buffers.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::DimensionMismatch`] on length mismatch or
    /// [`RecoveryError::InvalidParameter`] for non-positive λ settings.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
    ) -> Result<Recovery, RecoveryError> {
        self.solve_with(a, y, &mut SolverWorkspace::new())
    }

    /// Runs the solver reusing `workspace` buffers; results are
    /// bit-identical to [`Ista::solve`].
    ///
    /// # Errors
    ///
    /// Same as [`Ista::solve`].
    // tidy:alloc-free
    pub fn solve_with<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> Result<Recovery, RecoveryError> {
        check_dims(a.rows(), y)?;
        let n = a.cols();
        workspace.prepare(a.rows(), n);
        let SolverWorkspace {
            alpha,
            alpha_prev: prev,
            grad,
            resid,
            ..
        } = workspace;
        // λ resolution (grad doubles as the Aᵀy buffer; the loop
        // overwrites it before reading it again).
        a.apply_adjoint(y, grad);
        let aty = &*grad;
        let lambda = if let Some(l) = self.lambda_abs {
            if l < 0.0 {
                return Err(RecoveryError::InvalidParameter(
                    "lambda must be non-negative".into(),
                ));
            }
            l
        } else {
            let r = self.lambda_ratio.unwrap_or(0.02);
            if r <= 0.0 {
                return Err(RecoveryError::InvalidParameter(
                    "lambda ratio must be positive".into(),
                ));
            }
            r * aty.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
        };
        let step = match self.step {
            Some(s) if s > 0.0 => s,
            Some(_) => {
                return Err(RecoveryError::InvalidParameter(
                    "step must be positive".into(),
                ))
            }
            None => {
                let norm = op::operator_norm_est(a, 30, norm_seeds::ISTA);
                if norm == 0.0 {
                    return Ok(Recovery {
                        // tidy:allow(alloc: zero-operator early exit, before the iteration loop)
                        coefficients: vec![0.0; n],
                        stats: SolveStats {
                            iterations: 0,
                            residual_norm: op::norm2(y),
                            converged: true,
                        },
                    });
                }
                1.0 / (norm * norm * 1.05)
            }
        };
        let mut iterations = 0;
        let mut converged = false;
        for it in 0..self.max_iter {
            iterations = it + 1;
            a.apply(alpha, resid);
            for (r, &yi) in resid.iter_mut().zip(y) {
                *r -= yi;
            }
            a.apply_adjoint(resid, grad);
            prev.copy_from_slice(alpha);
            for i in 0..n {
                alpha[i] -= step * grad[i];
            }
            soft_threshold(alpha, lambda * step);
            let mut diff = 0.0;
            let mut nrm = 0.0;
            for i in 0..n {
                let d = alpha[i] - prev[i];
                diff += d * d;
                nrm += alpha[i] * alpha[i];
            }
            if diff.sqrt() <= self.tol * nrm.sqrt().max(1e-12) {
                converged = true;
                break;
            }
        }
        a.apply(alpha, resid);
        for (r, &yi) in resid.iter_mut().zip(y) {
            *r -= yi;
        }
        Ok(Recovery {
            // tidy:allow(alloc: the returned coefficient vector, once per solve)
            coefficients: alpha.clone(),
            stats: SolveStats {
                iterations,
                residual_norm: op::norm2(resid),
                converged,
            },
        })
    }
}

impl Default for Ista {
    fn default() -> Self {
        Ista::new()
    }
}

impl Solver for Ista {
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            name: "ista",
            norm_seed: Some(norm_seeds::ISTA),
            column_hungry: false,
        }
    }

    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult {
        Ista::solve_with(self, a, y, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    #[test]
    fn ista_converges_on_small_problem() {
        let mut rng = SplitMix64::new(3);
        let a = DenseMatrix::from_fn(30, 60, |_, _| rng.next_gaussian() / 30f64.sqrt());
        let mut x = vec![0.0; 60];
        x[10] = 1.0;
        x[40] = -2.0;
        let y = a.apply_vec(&x);
        let rec = Ista::new()
            .lambda_ratio(0.02)
            .max_iter(3000)
            .tol(1e-8)
            .solve(&a, &y)
            .unwrap();
        assert!(rec.stats.converged);
        assert!((rec.coefficients[40] + 2.0).abs() < 0.2);
        assert!((rec.coefficients[10] - 1.0).abs() < 0.2);
    }

    #[test]
    fn objective_decreases_monotonically() {
        // ISTA is a monotone method: check objective at a few milestones.
        let mut rng = SplitMix64::new(5);
        let a = DenseMatrix::from_fn(20, 40, |_, _| rng.next_gaussian() / 20f64.sqrt());
        let mut x = vec![0.0; 40];
        x[5] = 1.5;
        let y = a.apply_vec(&x);
        let objective = |alpha: &[f64], lambda: f64| {
            let r = tepics_cs::op::sub(&a.apply_vec(alpha), &y);
            0.5 * tepics_cs::op::dot(&r, &r) + lambda * alpha.iter().map(|v| v.abs()).sum::<f64>()
        };
        let aty = a.apply_adjoint_vec(&y);
        let lambda = 0.05 * aty.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let mut last = f64::INFINITY;
        for iters in [1usize, 5, 20, 100, 400] {
            let rec = Ista::new()
                .lambda(lambda)
                .max_iter(iters)
                .tol(0.0)
                .solve(&a, &y)
                .unwrap();
            let obj = objective(&rec.coefficients, lambda);
            assert!(obj <= last + 1e-9, "objective rose at {iters} iters");
            last = obj;
        }
    }
}
