//! Orthogonal matching pursuit.
//!
//! The classic greedy decoder: pick the atom most correlated with the
//! residual, re-fit all selected atoms by least squares (via incremental
//! Cholesky on the growing Gram matrix), repeat. Exact for k-sparse
//! signals when the matrix is well-conditioned on the support, and the
//! standard per-block solver of block-based CS.
//!
//! Selected columns are gathered through
//! [`LinearOperator::column_into`], so an operator carrying a
//! column-materialized view ([`LinearOperator::column_view`]) serves
//! each atom as a copy instead of a full synthesis — the values are
//! identical either way, so attaching a view never changes OMP's
//! result.

use crate::solver::{SolveResult, Solver, SolverCaps};
use crate::workspace::SolverWorkspace;
use crate::{check_dims, Recovery, RecoveryError, SolveStats};
use tepics_cs::op::{self, LinearOperator};

/// OMP solver configuration.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Omp {
    max_atoms: usize,
    residual_tol: f64,
}

impl Omp {
    /// Creates a solver that selects at most `max_atoms` atoms.
    ///
    /// # Panics
    ///
    /// Panics if `max_atoms == 0`.
    pub fn new(max_atoms: usize) -> Self {
        assert!(max_atoms > 0, "need at least one atom");
        Omp {
            max_atoms,
            residual_tol: 1e-9,
        }
    }

    /// Stops early once `‖r‖ ≤ tol · ‖y‖`.
    pub fn residual_tol(&mut self, tol: f64) -> &mut Self {
        self.residual_tol = tol;
        self
    }

    /// Runs the pursuit with freshly allocated buffers.
    ///
    /// Atom selection maximizes `|⟨a_j, r⟩|` (unnormalized); for the
    /// ensembles in this workspace columns have near-equal norms, and
    /// the equal-norm assumption is standard for OMP on such ensembles.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::DimensionMismatch`] if `y` does not match
    /// the operator.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
    ) -> Result<Recovery, RecoveryError> {
        self.solve_with(a, y, &mut SolverWorkspace::new())
    }

    /// Runs the pursuit reusing `workspace` buffers (residual,
    /// correlations, gathered columns, the growing Cholesky, and the
    /// small least-squares vectors); results are bit-identical to
    /// [`Omp::solve`], with no allocations inside the pursuit loop once
    /// the workspace is warm.
    ///
    /// # Errors
    ///
    /// Same as [`Omp::solve`].
    // tidy:alloc-free
    pub fn solve_with<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> Result<Recovery, RecoveryError> {
        check_dims(a.rows(), y)?;
        let n = a.cols();
        let m = a.rows();
        let y_norm = op::norm2(y);
        let budget = self.max_atoms.min(n).min(m);
        let SolverWorkspace {
            grad: corr,
            resid: residual,
            support,
            columns,
            gram_cross: cross,
            rhs,
            small: coeffs,
            small2: chol_tmp,
            chol,
            ..
        } = workspace;
        let chol = chol
            // tidy:allow(alloc: cold-path Cholesky factor; warm workspaces reuse it)
            .get_or_insert_with(|| tepics_cs::chol::GrowingCholesky::with_capacity(budget.max(1)));
        chol.reset(budget.max(1));
        corr.clear();
        corr.resize(n, 0.0);
        residual.clear();
        residual.extend_from_slice(y);
        support.clear();
        columns.clear();
        columns.resize(budget * m, 0.0);
        rhs.clear();
        coeffs.clear();
        let mut converged = y_norm == 0.0;
        while support.len() < budget && !converged {
            a.apply_adjoint(residual, corr);
            // Best atom not already selected.
            let mut best = None;
            let mut best_mag = 0.0;
            for (j, &c) in corr.iter().enumerate() {
                if c.abs() > best_mag && !support.contains(&j) {
                    best_mag = c.abs();
                    best = Some(j);
                }
            }
            let Some(j) = best else { break };
            if best_mag < 1e-14 {
                break; // residual orthogonal to every atom
            }
            let picked = support.len();
            a.column_into(j, &mut columns[picked * m..(picked + 1) * m]);
            let (prior, rest) = columns.split_at(picked * m);
            let col = &rest[..m];
            cross.clear();
            cross.extend(prior.chunks_exact(m).map(|c| op::dot(c, col)));
            let diag = op::dot(col, col);
            if chol.push(cross, diag).is_err() {
                // Dependent atom: skip it by pretending correlation is
                // exhausted (no further progress possible on this atom).
                break;
            }
            support.push(j);
            // Least squares on the support: G c = Bᵀ y with B the
            // selected columns. rhs entries ⟨b_i, y⟩ never change, so
            // each iteration appends only the new atom's entry.
            rhs.push(op::dot(col, y));
            chol.solve_into(rhs, coeffs, chol_tmp);
            // Residual r = y − B c.
            residual.copy_from_slice(y);
            for (c, col) in coeffs.iter().zip(columns.chunks_exact(m)) {
                op::axpy(-c, col, residual);
            }
            if op::norm2(residual) <= self.residual_tol * y_norm.max(1e-300) {
                converged = true;
            }
        }
        // tidy:allow(alloc: the returned coefficient vector, once per solve)
        let mut full = vec![0.0; n];
        for (&j, &c) in support.iter().zip(coeffs.iter()) {
            full[j] = c;
        }
        Ok(Recovery {
            coefficients: full,
            stats: SolveStats {
                iterations: support.len(),
                residual_norm: op::norm2(residual),
                converged,
            },
        })
    }
}

impl Solver for Omp {
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            name: "omp",
            norm_seed: None,
            column_hungry: true,
        }
    }

    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult {
        Omp::solve_with(self, a, y, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    fn gaussian_problem(
        rows: usize,
        cols: usize,
        k: usize,
        seed: u64,
    ) -> (DenseMatrix, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let a = DenseMatrix::from_fn(rows, cols, |_, _| {
            rng.next_gaussian() / (rows as f64).sqrt()
        });
        let mut x = vec![0.0; cols];
        let mut placed = 0;
        while placed < k {
            let i = rng.next_below(cols as u64) as usize;
            if x[i] == 0.0 {
                x[i] = if rng.next_bool() { 1.0 } else { -1.0 } * (0.5 + rng.next_f64());
                placed += 1;
            }
        }
        let y = a.apply_vec(&x);
        (a, x, y)
    }

    #[test]
    fn exact_recovery_of_sparse_signals() {
        // A small atom budget beyond k absorbs the occasional early
        // mis-pick; once the true support is in, the LS fit drives the
        // residual to zero and convergence stops the pursuit.
        for seed in 1..=5 {
            let (a, x, y) = gaussian_problem(40, 120, 6, seed);
            let rec = Omp::new(10).residual_tol(1e-10).solve(&a, &y).unwrap();
            assert!(rec.stats.converged, "seed {seed} did not converge");
            for (i, &xi) in x.iter().enumerate() {
                assert!(
                    (rec.coefficients[i] - xi).abs() < 1e-6,
                    "seed {seed}, coef {i}: {} vs {}",
                    rec.coefficients[i],
                    xi
                );
            }
        }
    }

    #[test]
    fn column_view_leaves_results_bit_identical() {
        // OMP only *reads* columns; a materialized view changes where
        // they come from, not their values, so results must be equal
        // bit for bit.
        use tepics_cs::colview::ColumnMatrix;
        let (a, _, y) = gaussian_problem(30, 80, 5, 99);
        let view = ColumnMatrix::from_operator(&a);
        let plain = Omp::new(8).solve(&a, &y).unwrap();
        let through_view = Omp::new(8).solve(&view, &y).unwrap();
        assert_eq!(plain, through_view);
    }

    #[test]
    fn residual_decreases_with_atom_budget() {
        let (a, _, y) = gaussian_problem(30, 80, 10, 42);
        let mut last = f64::INFINITY;
        for budget in [1usize, 3, 6, 10] {
            let rec = Omp::new(budget).solve(&a, &y).unwrap();
            assert!(
                rec.stats.residual_norm <= last + 1e-12,
                "residual rose at budget {budget}"
            );
            last = rec.stats.residual_norm;
        }
    }

    #[test]
    fn zero_measurement_yields_zero() {
        let (a, _, _) = gaussian_problem(20, 40, 3, 7);
        let rec = Omp::new(5).solve(&a, [0.0; 20].as_ref()).unwrap();
        assert!(rec.coefficients.iter().all(|&v| v == 0.0));
        assert!(rec.stats.converged);
        assert_eq!(rec.stats.iterations, 0);
    }

    #[test]
    fn budget_caps_support_size() {
        let (a, _, y) = gaussian_problem(30, 80, 10, 3);
        let rec = Omp::new(4).solve(&a, &y).unwrap();
        let nnz = rec.coefficients.iter().filter(|&&v| v != 0.0).count();
        assert!(nnz <= 4);
    }

    #[test]
    fn handles_duplicate_columns_gracefully() {
        // Two identical columns: OMP must not crash on the dependent atom.
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let y = vec![2.0, 1.0];
        let rec = Omp::new(3).solve(&a, &y).unwrap();
        // Either col 0 or col 1 explains the first component.
        let fit = a.apply_vec(&rec.coefficients);
        assert!((fit[0] - 2.0).abs() < 1e-9);
        assert!((fit[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (a, _, _) = gaussian_problem(10, 20, 2, 1);
        assert!(Omp::new(2).solve(&a, &[0.0; 11]).is_err());
    }
}
