//! CGLS — conjugate gradient on the normal equations.
//!
//! Solves `min_x ‖A x − b‖₂` matrix-free. Used directly for
//! least-squares subproblems (CoSaMP, debiasing) through
//! [`RestrictedOperator`], which confines an operator to a column
//! support without materializing anything.

use crate::{check_dims, Recovery, RecoveryError, SolveStats};
use std::cell::RefCell;
use tepics_cs::op::{self, LinearOperator};

/// A view of an operator restricted to a subset of its columns.
///
/// `apply` scatters the small coefficient vector into the full domain;
/// `apply_adjoint` gathers only the supported entries. Both run through
/// an internal full-width scratch buffer, so repeated applications (the
/// CGLS loop) allocate nothing after the first call. The buffer makes
/// this type `!Sync`; it is a per-solve view, never shared across
/// threads.
#[derive(Debug, Clone)]
pub struct RestrictedOperator<'a, A: ?Sized> {
    inner: &'a A,
    support: Vec<usize>,
    /// Full-width scatter buffer for `apply`. Off-support entries are
    /// zeroed once and stay zero: `apply` only ever writes the same
    /// support positions.
    full_in: RefCell<Vec<f64>>,
    /// Full-width gather buffer for `apply_adjoint` (separate from
    /// `full_in` so the adjoint cannot disturb its zero invariant).
    full_out: RefCell<Vec<f64>>,
}

impl<'a, A: LinearOperator + ?Sized> RestrictedOperator<'a, A> {
    /// Restricts `inner` to `support` (column indices, unique).
    ///
    /// # Panics
    ///
    /// Panics if `support` is empty or contains an out-of-range index.
    pub fn new(inner: &'a A, support: Vec<usize>) -> Self {
        assert!(!support.is_empty(), "support must be non-empty");
        for &j in &support {
            assert!(j < inner.cols(), "support index {j} out of range");
        }
        RestrictedOperator {
            full_in: RefCell::new(vec![0.0; inner.cols()]),
            full_out: RefCell::new(vec![0.0; inner.cols()]),
            inner,
            support,
        }
    }

    /// The support column indices.
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// Scatters restricted coefficients back into a full-length vector.
    pub fn embed(&self, coeffs: &[f64]) -> Vec<f64> {
        assert_eq!(
            coeffs.len(),
            self.support.len(),
            "coefficient length mismatch"
        );
        let mut full = vec![0.0; self.inner.cols()];
        for (&j, &v) in self.support.iter().zip(coeffs) {
            full[j] = v;
        }
        full
    }
}

impl<'a, A: LinearOperator + ?Sized> LinearOperator for RestrictedOperator<'a, A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.support.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.support.len(), "input length mismatch");
        let mut full = self.full_in.borrow_mut();
        for (&j, &v) in self.support.iter().zip(x) {
            full[j] = v;
        }
        self.inner.apply(&full, y);
    }

    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(x.len(), self.support.len(), "output length mismatch");
        let mut full = self.full_out.borrow_mut();
        self.inner.apply_adjoint(y, &mut full);
        for (o, &j) in x.iter_mut().zip(&self.support) {
            *o = full[j];
        }
    }
}

/// CGLS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cgls {
    max_iter: usize,
    tol: f64,
}

impl Cgls {
    /// Creates a solver with the given iteration cap and relative
    /// residual tolerance.
    pub fn new(max_iter: usize, tol: f64) -> Self {
        Cgls { max_iter, tol }
    }

    /// Solves `min ‖Ax − b‖` from a zero start.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::DimensionMismatch`] if `b` does not match
    /// the operator rows.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        b: &[f64],
    ) -> Result<Recovery, RecoveryError> {
        check_dims(a.rows(), b)?;
        let n = a.cols();
        let mut x = vec![0.0; n];
        // r = b − Ax = b at x=0.
        let mut r = b.to_vec();
        let mut s = a.apply_adjoint_vec(&r); // s = Aᵀr
        let mut p = s.clone();
        let mut snorm2 = op::dot(&s, &s);
        let b_norm = op::norm2(b).max(1e-300);
        let mut q = vec![0.0; a.rows()];
        let mut iterations = 0;
        let mut converged = snorm2.sqrt() <= self.tol * b_norm;
        for it in 0..self.max_iter {
            if converged {
                break;
            }
            iterations = it + 1;
            a.apply(&p, &mut q);
            let qq = op::dot(&q, &q);
            if qq == 0.0 {
                break; // p in the null space; nothing more to gain
            }
            let alpha = snorm2 / qq;
            op::axpy(alpha, &p, &mut x);
            op::axpy(-alpha, &q, &mut r);
            a.apply_adjoint(&r, &mut s);
            let snorm2_new = op::dot(&s, &s);
            if snorm2_new.sqrt() <= self.tol * b_norm {
                converged = true;
            }
            let beta = snorm2_new / snorm2;
            for i in 0..n {
                p[i] = s[i] + beta * p[i];
            }
            snorm2 = snorm2_new;
        }
        let final_resid = op::norm2(&op::sub(&a.apply_vec(&x), b));
        Ok(Recovery {
            coefficients: x,
            stats: SolveStats {
                iterations,
                residual_norm: final_resid,
                converged,
            },
        })
    }
}

impl Default for Cgls {
    fn default() -> Self {
        Cgls::new(200, 1e-10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    #[test]
    fn solves_consistent_overdetermined_system() {
        let mut rng = SplitMix64::new(8);
        let a = DenseMatrix::from_fn(20, 5, |_, _| rng.next_gaussian());
        let x_true: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let b = a.apply_vec(&x_true);
        let rec = Cgls::default().solve(&a, &b).unwrap();
        assert!(rec.stats.converged);
        for (p, q) in rec.coefficients.iter().zip(&x_true) {
            assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_range() {
        let mut rng = SplitMix64::new(9);
        let a = DenseMatrix::from_fn(15, 4, |_, _| rng.next_gaussian());
        let b: Vec<f64> = (0..15).map(|_| rng.next_gaussian()).collect();
        let rec = Cgls::new(500, 1e-12).solve(&a, &b).unwrap();
        let r = op::sub(&a.apply_vec(&rec.coefficients), &b);
        let atr = a.apply_adjoint_vec(&r);
        assert!(
            op::norm2(&atr) < 1e-7,
            "normal equations violated: {}",
            op::norm2(&atr)
        );
    }

    #[test]
    fn restricted_operator_solves_on_support() {
        let mut rng = SplitMix64::new(10);
        let a = DenseMatrix::from_fn(20, 30, |_, _| rng.next_gaussian());
        let support = vec![3usize, 17, 22];
        let coeffs = [1.0, -2.0, 0.5];
        let restricted = RestrictedOperator::new(&a, support.clone());
        let b = restricted.apply_vec(&coeffs);
        let rec = Cgls::default().solve(&restricted, &b).unwrap();
        for (p, q) in rec.coefficients.iter().zip(&coeffs) {
            assert!((p - q).abs() < 1e-7);
        }
        // Embedding scatters correctly.
        let full = restricted.embed(&rec.coefficients);
        assert!((full[17] + 2.0).abs() < 1e-7);
        assert_eq!(full.iter().filter(|&&v| v != 0.0).count(), 3);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = DenseMatrix::identity(4);
        let rec = Cgls::default().solve(&a, &[0.0; 4]).unwrap();
        assert!(rec.coefficients.iter().all(|&v| v == 0.0));
        assert!(rec.stats.converged);
    }

    #[test]
    #[should_panic(expected = "support index")]
    fn out_of_range_support_panics() {
        let a = DenseMatrix::identity(4);
        RestrictedOperator::new(&a, vec![4]);
    }
}
