//! CGLS — conjugate gradient on the normal equations.
//!
//! Solves `min_x ‖A x − b‖₂` matrix-free. Used directly for
//! least-squares subproblems (CoSaMP, debiasing) through
//! [`RestrictedOperator`], which confines an operator to a column
//! support without materializing anything — unless the inner operator
//! carries a column-materialized view
//! ([`LinearOperator::column_view`]), in which case the restricted
//! applications become small dense gathers over the support columns
//! (the fast path for greedy recovery; results agree with the scatter
//! path to ≤1e-10 relative, the workspace-wide fast-path contract).

use crate::solver::{SolveResult, Solver, SolverCaps};
use crate::workspace::SolverWorkspace;
use crate::{check_dims, Recovery, RecoveryError, SolveStats};
use std::cell::RefCell;
use tepics_cs::op::{self, LinearOperator};

/// A view of an operator restricted to a subset of its columns.
///
/// Without a column view on the inner operator, `apply` scatters the
/// small coefficient vector into the full domain and `apply_adjoint`
/// gathers only the supported entries; both run through internal
/// full-width scratch buffers, so repeated applications (the CGLS loop)
/// allocate nothing after the first call. When the inner operator
/// exposes a column view, both applications instead run directly over
/// the materialized support columns — `O(rows · |support|)` per
/// application with no full-width traffic at all.
///
/// The scratch buffers make this type `!Sync`; it is a per-solve view,
/// never shared across threads. Callers that solve repeatedly (CoSaMP's
/// outer loop, per-frame debiasing) construct it via
/// [`RestrictedOperator::with_scratch`] from workspace-owned buffers and
/// recover them with [`RestrictedOperator::into_parts`], keeping warm
/// solves allocation-free.
#[derive(Debug, Clone)]
pub struct RestrictedOperator<'a, A: ?Sized> {
    inner: &'a A,
    support: Vec<usize>,
    /// Full-width scatter buffer for `apply`. Off-support entries are
    /// zeroed once and stay zero: `apply` only ever writes the same
    /// support positions. Unused (kept empty) on the column-view path.
    full_in: RefCell<Vec<f64>>,
    /// Full-width gather buffer for `apply_adjoint` (separate from
    /// `full_in` so the adjoint cannot disturb its zero invariant).
    /// Unused (kept empty) on the column-view path.
    full_out: RefCell<Vec<f64>>,
    /// Whether the inner operator exposed a column view at construction.
    use_columns: bool,
}

impl<'a, A: LinearOperator + ?Sized> RestrictedOperator<'a, A> {
    /// Restricts `inner` to `support` (column indices, unique).
    ///
    /// # Panics
    ///
    /// Panics if `support` is empty or contains an out-of-range index.
    pub fn new(inner: &'a A, support: Vec<usize>) -> Self {
        Self::with_scratch(inner, support, Vec::new(), Vec::new())
    }

    /// Like [`RestrictedOperator::new`], reusing caller-owned scratch
    /// buffers (recovered afterwards with
    /// [`RestrictedOperator::into_parts`]); results are identical.
    ///
    /// # Panics
    ///
    /// Panics if `support` is empty or contains an out-of-range index.
    pub fn with_scratch(
        inner: &'a A,
        support: Vec<usize>,
        mut full_in: Vec<f64>,
        mut full_out: Vec<f64>,
    ) -> Self {
        assert!(!support.is_empty(), "support must be non-empty");
        for &j in &support {
            assert!(j < inner.cols(), "support index {j} out of range");
        }
        let use_columns = inner.column_view().is_some();
        if use_columns {
            // The dense path never touches the full domain.
            full_in.clear();
            full_out.clear();
        } else {
            full_in.clear();
            full_in.resize(inner.cols(), 0.0);
            full_out.clear();
            full_out.resize(inner.cols(), 0.0);
        }
        RestrictedOperator {
            inner,
            support,
            full_in: RefCell::new(full_in),
            full_out: RefCell::new(full_out),
            use_columns,
        }
    }

    /// Consumes the view, returning the support and scratch buffers for
    /// reuse.
    pub fn into_parts(self) -> (Vec<usize>, Vec<f64>, Vec<f64>) {
        (
            self.support,
            self.full_in.into_inner(),
            self.full_out.into_inner(),
        )
    }

    /// The support column indices.
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// Scatters restricted coefficients back into a full-length vector.
    pub fn embed(&self, coeffs: &[f64]) -> Vec<f64> {
        assert_eq!(
            coeffs.len(),
            self.support.len(),
            "coefficient length mismatch"
        );
        let mut full = vec![0.0; self.inner.cols()];
        for (&j, &v) in self.support.iter().zip(coeffs) {
            full[j] = v;
        }
        full
    }
}

impl<'a, A: LinearOperator + ?Sized> LinearOperator for RestrictedOperator<'a, A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.support.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.support.len(), "input length mismatch");
        if let (true, Some(view)) = (self.use_columns, self.inner.column_view()) {
            y.fill(0.0);
            for (&j, &v) in self.support.iter().zip(x) {
                if v != 0.0 {
                    op::axpy(v, view.column(j), y);
                }
            }
            return;
        }
        let mut full = self.full_in.borrow_mut();
        for (&j, &v) in self.support.iter().zip(x) {
            full[j] = v;
        }
        self.inner.apply(&full, y);
    }

    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(x.len(), self.support.len(), "output length mismatch");
        if let (true, Some(view)) = (self.use_columns, self.inner.column_view()) {
            for (o, &j) in x.iter_mut().zip(&self.support) {
                *o = op::dot(view.column(j), y);
            }
            return;
        }
        let mut full = self.full_out.borrow_mut();
        self.inner.apply_adjoint(y, &mut full);
        for (o, &j) in x.iter_mut().zip(&self.support) {
            *o = full[j];
        }
    }

    fn column_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.support.len(), "column {j} out of range");
        self.inner.column_into(self.support[j], out);
    }
}

/// CGLS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cgls {
    max_iter: usize,
    tol: f64,
}

impl Cgls {
    /// Creates a solver with the given iteration cap and relative
    /// residual tolerance.
    pub fn new(max_iter: usize, tol: f64) -> Self {
        Cgls { max_iter, tol }
    }

    /// Solves `min ‖Ax − b‖` from a zero start.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::DimensionMismatch`] if `b` does not match
    /// the operator rows.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        b: &[f64],
    ) -> Result<Recovery, RecoveryError> {
        self.solve_with(a, b, &mut SolverWorkspace::new())
    }

    /// Like [`Cgls::solve`], reusing `workspace` buffers (the dedicated
    /// `lsq_*` set, so CGLS can run *nested inside* another solver that
    /// holds the iterate buffers — CoSaMP's re-fit, the debias pass);
    /// results are bit-identical to [`Cgls::solve`].
    ///
    /// # Errors
    ///
    /// Same as [`Cgls::solve`].
    // tidy:alloc-free
    pub fn solve_with<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        b: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> Result<Recovery, RecoveryError> {
        let stats = self.solve_into(a, b, workspace)?;
        Ok(Recovery {
            // tidy:allow(alloc: the returned coefficient vector, once per solve)
            coefficients: workspace.lsq_x.clone(),
            stats,
        })
    }

    /// [`Cgls::solve_with`] without the final coefficient clone: the
    /// solution is left in `workspace.lsq_x` for callers (CoSaMP,
    /// debias) that consume it in place.
    pub(crate) fn solve_into<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        b: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> Result<SolveStats, RecoveryError> {
        check_dims(a.rows(), b)?;
        let n = a.cols();
        let m = a.rows();
        let SolverWorkspace {
            lsq_x: x,
            lsq_r: r,
            lsq_s: s,
            lsq_p: p,
            lsq_q: q,
            ..
        } = workspace;
        x.clear();
        x.resize(n, 0.0);
        // r = b − Ax = b at x=0.
        r.clear();
        r.extend_from_slice(b);
        s.clear();
        s.resize(n, 0.0);
        a.apply_adjoint(r, s); // s = Aᵀr
        p.clear();
        p.extend_from_slice(s);
        q.clear();
        q.resize(m, 0.0);
        let mut snorm2 = op::dot(s, s);
        let b_norm = op::norm2(b).max(1e-300);
        let mut iterations = 0;
        let mut converged = snorm2.sqrt() <= self.tol * b_norm;
        for it in 0..self.max_iter {
            if converged {
                break;
            }
            iterations = it + 1;
            a.apply(p, q);
            let qq = op::dot(q, q);
            if qq == 0.0 {
                break; // p in the null space; nothing more to gain
            }
            let alpha = snorm2 / qq;
            op::axpy(alpha, p, x);
            op::axpy(-alpha, q, r);
            a.apply_adjoint(r, s);
            let snorm2_new = op::dot(s, s);
            if snorm2_new.sqrt() <= self.tol * b_norm {
                converged = true;
            }
            let beta = snorm2_new / snorm2;
            for i in 0..n {
                p[i] = s[i] + beta * p[i];
            }
            snorm2 = snorm2_new;
        }
        // Final residual ‖Ax − b‖, reusing q.
        a.apply(x, q);
        let mut rr = 0.0;
        for (qi, &bi) in q.iter().zip(b) {
            let d = qi - bi;
            rr += d * d;
        }
        Ok(SolveStats {
            iterations,
            residual_norm: rr.sqrt(),
            converged,
        })
    }
}

impl Default for Cgls {
    fn default() -> Self {
        Cgls::new(200, 1e-10)
    }
}

impl Solver for Cgls {
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            name: "cgls",
            norm_seed: None,
            column_hungry: false,
        }
    }

    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult {
        Cgls::solve_with(self, a, y, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_cs::colview::ColumnMatrix;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    #[test]
    fn solves_consistent_overdetermined_system() {
        let mut rng = SplitMix64::new(8);
        let a = DenseMatrix::from_fn(20, 5, |_, _| rng.next_gaussian());
        let x_true: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let b = a.apply_vec(&x_true);
        let rec = Cgls::default().solve(&a, &b).unwrap();
        assert!(rec.stats.converged);
        for (p, q) in rec.coefficients.iter().zip(&x_true) {
            assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_range() {
        let mut rng = SplitMix64::new(9);
        let a = DenseMatrix::from_fn(15, 4, |_, _| rng.next_gaussian());
        let b: Vec<f64> = (0..15).map(|_| rng.next_gaussian()).collect();
        let rec = Cgls::new(500, 1e-12).solve(&a, &b).unwrap();
        let r = op::sub(&a.apply_vec(&rec.coefficients), &b);
        let atr = a.apply_adjoint_vec(&r);
        assert!(
            op::norm2(&atr) < 1e-7,
            "normal equations violated: {}",
            op::norm2(&atr)
        );
    }

    #[test]
    fn restricted_operator_solves_on_support() {
        let mut rng = SplitMix64::new(10);
        let a = DenseMatrix::from_fn(20, 30, |_, _| rng.next_gaussian());
        let support = vec![3usize, 17, 22];
        let coeffs = [1.0, -2.0, 0.5];
        let restricted = RestrictedOperator::new(&a, support.clone());
        let b = restricted.apply_vec(&coeffs);
        let rec = Cgls::default().solve(&restricted, &b).unwrap();
        for (p, q) in rec.coefficients.iter().zip(&coeffs) {
            assert!((p - q).abs() < 1e-7);
        }
        // Embedding scatters correctly.
        let full = restricted.embed(&rec.coefficients);
        assert!((full[17] + 2.0).abs() < 1e-7);
        assert_eq!(full.iter().filter(|&&v| v != 0.0).count(), 3);
    }

    #[test]
    fn column_view_path_matches_scatter_path() {
        // The same restriction through a column-materialized inner
        // operator must agree with the scatter/gather path to the
        // fast-path tolerance.
        let mut rng = SplitMix64::new(11);
        let a = DenseMatrix::from_fn(18, 40, |_, _| rng.next_gaussian());
        let view = ColumnMatrix::from_operator(&a);
        let support = vec![1usize, 8, 19, 33];
        let scatter = RestrictedOperator::new(&a, support.clone());
        let dense = RestrictedOperator::new(&view, support.clone());
        let x: Vec<f64> = (0..4).map(|_| rng.next_gaussian()).collect();
        let y: Vec<f64> = (0..18).map(|_| rng.next_gaussian()).collect();
        for (got, want) in dense.apply_vec(&x).iter().zip(scatter.apply_vec(&x)) {
            assert!((got - want).abs() <= 1e-10 * want.abs().max(1.0));
        }
        for (got, want) in dense
            .apply_adjoint_vec(&y)
            .iter()
            .zip(scatter.apply_adjoint_vec(&y))
        {
            assert!((got - want).abs() <= 1e-10 * want.abs().max(1.0));
        }
        // Restricted columns forward to the inner columns.
        assert_eq!(dense.column(2), a.column(19));
    }

    #[test]
    fn scratch_buffers_round_trip() {
        let a = DenseMatrix::identity(6);
        let restricted = RestrictedOperator::with_scratch(&a, vec![1, 4], vec![9.0; 2], Vec::new());
        let y = restricted.apply_vec(&[2.0, 3.0]);
        assert_eq!(y, vec![0.0, 2.0, 0.0, 0.0, 3.0, 0.0]);
        let (support, full_in, full_out) = restricted.into_parts();
        assert_eq!(support, vec![1, 4]);
        assert_eq!(full_in.len(), 6, "scratch grew to the full domain");
        assert_eq!(full_out.len(), 6);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = DenseMatrix::identity(4);
        let rec = Cgls::default().solve(&a, &[0.0; 4]).unwrap();
        assert!(rec.coefficients.iter().all(|&v| v == 0.0));
        assert!(rec.stats.converged);
    }

    #[test]
    #[should_panic(expected = "support index")]
    fn out_of_range_support_panics() {
        let a = DenseMatrix::identity(4);
        RestrictedOperator::new(&a, vec![4]);
    }
}
