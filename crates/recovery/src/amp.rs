//! AMP — approximate message passing (Donoho, Maleki & Montanari 2009).
//!
//! For measurement ensembles with i.i.d.-like entries, AMP iterates
//! soft thresholding with an *Onsager correction* term that keeps the
//! effective noise Gaussian, converging in tens of iterations where
//! ISTA needs hundreds. The threshold is set adaptively from the
//! residual's estimated noise level (`τ = κ·median(|Aᵀr|)/0.6745`-style;
//! we use the common `τ = κ·‖r‖/√m` rule).
//!
//! AMP's state-evolution guarantees assume i.i.d. sub-Gaussian matrices;
//! on the XOR-structured CA ensemble it is a heuristic — the solver
//! comparison in the experiments treats it accordingly.

use crate::shrink::soft_threshold;
use crate::solver::{norm_seeds, SolveResult, Solver, SolverCaps};
use crate::workspace::SolverWorkspace;
use crate::{check_dims, Recovery, RecoveryError, SolveStats};
use tepics_cs::op::{self, LinearOperator};

/// AMP solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Amp {
    max_iter: usize,
    tol: f64,
    /// Threshold multiplier κ (≈2–3 for noiseless CS).
    kappa: f64,
    norm: Option<f64>,
}

impl Amp {
    /// Creates a solver with defaults: 60 iterations, κ = 2.5,
    /// tolerance 1e-8.
    pub fn new() -> Self {
        Amp {
            max_iter: 60,
            tol: 1e-8,
            kappa: 2.5,
            norm: None,
        }
    }

    /// Overrides the operator-norm estimate `‖A‖₂` behind the internal
    /// rescaling (skips the seeded power iteration — callers that
    /// memoize it pass its result back through here). A non-positive
    /// value is rejected at solve time, like the sibling `step`
    /// overrides on ISTA/IHT.
    pub fn operator_norm(&mut self, norm: f64) -> &mut Self {
        self.norm = Some(norm);
        self
    }

    /// Iteration cap.
    pub fn max_iter(&mut self, n: usize) -> &mut Self {
        self.max_iter = n;
        self
    }

    /// Relative-change stopping tolerance.
    pub fn tol(&mut self, tol: f64) -> &mut Self {
        self.tol = tol;
        self
    }

    /// Threshold multiplier κ.
    ///
    /// # Panics
    ///
    /// Panics if `kappa <= 0`.
    pub fn kappa(&mut self, kappa: f64) -> &mut Self {
        assert!(kappa > 0.0, "kappa must be positive");
        self.kappa = kappa;
        self
    }

    /// Runs the solver with freshly allocated buffers. The operator is
    /// internally rescaled by `1/‖A‖` so AMP's unit-column-variance
    /// assumption approximately holds.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::DimensionMismatch`] if `y` does not
    /// match the operator.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
    ) -> Result<Recovery, RecoveryError> {
        self.solve_with(a, y, &mut SolverWorkspace::new())
    }

    /// Runs the solver reusing `workspace` buffers; results are
    /// bit-identical to [`Amp::solve`], with no allocations inside the
    /// iteration loop once the workspace is warm.
    ///
    /// # Errors
    ///
    /// Same as [`Amp::solve`].
    // tidy:alloc-free
    pub fn solve_with<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> Result<Recovery, RecoveryError> {
        check_dims(a.rows(), y)?;
        let m = a.rows();
        let n = a.cols();
        // Normalize the operator so columns have ~unit norm in the
        // aggregate: scale = ‖A‖₂ / sqrt(n/m) heuristic — for an i.i.d.
        // matrix with unit columns ‖A‖ ≈ 1 + sqrt(n/m).
        let norm = match self.norm {
            Some(v) if v > 0.0 => v,
            Some(_) => {
                return Err(RecoveryError::InvalidParameter(
                    "operator norm override must be positive".into(),
                ))
            }
            None => op::operator_norm_est(a, 30, norm_seeds::AMP),
        };
        if norm == 0.0 {
            return Ok(Recovery {
                // tidy:allow(alloc: zero-operator early exit, before the iteration loop)
                coefficients: vec![0.0; n],
                stats: SolveStats {
                    iterations: 0,
                    residual_norm: op::norm2(y),
                    converged: true,
                },
            });
        }
        let scale = norm / (1.0 + (n as f64 / m as f64).sqrt());
        workspace.prepare(m, n);
        let SolverWorkspace {
            alpha: x,
            alpha_prev: prev,
            grad,
            resid: y_s,
            rows_tmp: ax,
            rows_tmp2: z,
            ..
        } = workspace;
        for (s, &v) in y_s.iter_mut().zip(y) {
            *s = v / scale;
        }
        z.copy_from_slice(y_s); // corrected residual starts at y_s

        let mut iterations = 0;
        let mut converged = false;
        let mut nnz_prev = 0usize;
        for it in 0..self.max_iter {
            iterations = it + 1;
            // Pseudo-data: x + Aᵀz (A scaled by 1/scale on the fly).
            a.apply_adjoint(z, grad);
            prev.copy_from_slice(x);
            for i in 0..n {
                x[i] += grad[i] / scale;
            }
            // Adaptive threshold from the residual noise level.
            let tau = self.kappa * op::norm2(z) / (m as f64).sqrt();
            soft_threshold(x, tau);
            let nnz = x.iter().filter(|&&v| v != 0.0).count();
            // Residual with Onsager term: z ← y − Ax + z·(nnz/m).
            a.apply(x, ax);
            let onsager = nnz_prev as f64 / m as f64;
            for k in 0..m {
                z[k] = y_s[k] - ax[k] / scale + z[k] * onsager;
            }
            nnz_prev = nnz;
            let mut diff = 0.0;
            let mut nrm = 0.0;
            for i in 0..n {
                let d = x[i] - prev[i];
                diff += d * d;
                nrm += x[i] * x[i];
            }
            if diff.sqrt() <= self.tol * nrm.sqrt().max(1e-12) {
                converged = true;
                break;
            }
        }
        // Undo the scaling: the model was (A/scale)(x_s) = y/scale with
        // x_s = x, so the original-coordinates solution is x itself…
        // except A was applied unscaled inside the loop; verify residual
        // in original coordinates.
        a.apply(x, ax);
        for (r, &yi) in ax.iter_mut().zip(y) {
            *r -= yi;
        }
        Ok(Recovery {
            // tidy:allow(alloc: the returned coefficient vector, once per solve)
            coefficients: x.clone(),
            stats: SolveStats {
                iterations,
                residual_norm: op::norm2(ax),
                converged,
            },
        })
    }
}

impl Default for Amp {
    fn default() -> Self {
        Amp::new()
    }
}

impl Solver for Amp {
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            name: "amp",
            norm_seed: Some(norm_seeds::AMP),
            column_hungry: false,
        }
    }

    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult {
        Amp::solve_with(self, a, y, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    fn gaussian_problem(
        rows: usize,
        cols: usize,
        k: usize,
        seed: u64,
    ) -> (DenseMatrix, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let a = DenseMatrix::from_fn(rows, cols, |_, _| {
            rng.next_gaussian() / (rows as f64).sqrt()
        });
        let mut x = vec![0.0; cols];
        let mut placed = 0;
        while placed < k {
            let i = rng.next_below(cols as u64) as usize;
            if x[i] == 0.0 {
                x[i] = if rng.next_bool() { 2.0 } else { -2.0 };
                placed += 1;
            }
        }
        let y = a.apply_vec(&x);
        (a, x, y)
    }

    #[test]
    fn recovers_support_on_iid_gaussian() {
        let (a, x, y) = gaussian_problem(80, 200, 8, 5);
        let rec = Amp::new().max_iter(150).solve(&a, &y).unwrap();
        // AMP with adaptive thresholding is not exact; the support and
        // sign pattern must match and values land within 15%.
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                assert!(
                    (rec.coefficients[i] - xi).abs() < 0.35,
                    "coef {i}: {} vs {}",
                    rec.coefficients[i],
                    xi
                );
            }
        }
        let spurious = rec
            .coefficients
            .iter()
            .enumerate()
            .filter(|(i, &v)| x[*i] == 0.0 && v.abs() > 0.3)
            .count();
        assert_eq!(spurious, 0, "large spurious coefficients");
    }

    #[test]
    fn faster_than_ista_at_equal_accuracy() {
        use crate::ista::Ista;
        let (a, _, y) = gaussian_problem(80, 200, 8, 9);
        let amp = Amp::new().tol(1e-6).max_iter(500).solve(&a, &y).unwrap();
        let ista = Ista::new()
            .lambda_ratio(0.02)
            .tol(1e-6)
            .max_iter(2000)
            .solve(&a, &y)
            .unwrap();
        assert!(
            amp.stats.iterations < ista.stats.iterations,
            "AMP {} vs ISTA {} iterations",
            amp.stats.iterations,
            ista.stats.iterations
        );
    }

    #[test]
    fn zero_input_returns_zero() {
        let (a, _, _) = gaussian_problem(30, 60, 3, 2);
        let rec = Amp::new().solve(&a, &vec![0.0; 30]).unwrap();
        assert!(rec.coefficients.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dimension_mismatch_reported() {
        let (a, _, _) = gaussian_problem(30, 60, 3, 2);
        assert!(Amp::new().solve(&a, &vec![0.0; 29]).is_err());
    }

    #[test]
    fn non_positive_norm_override_is_rejected() {
        let (a, _, y) = gaussian_problem(30, 60, 3, 4);
        let err = Amp::new().operator_norm(0.0).solve(&a, &y).unwrap_err();
        assert!(matches!(err, crate::RecoveryError::InvalidParameter(_)));
    }

    #[test]
    fn norm_override_matches_internal_estimate() {
        let (a, _, y) = gaussian_problem(40, 80, 4, 6);
        use tepics_cs::op::operator_norm_est;
        let norm = operator_norm_est(&a, 30, crate::solver::norm_seeds::AMP);
        let auto = Amp::new().solve(&a, &y).unwrap();
        let overridden = Amp::new().operator_norm(norm).solve(&a, &y).unwrap();
        assert_eq!(auto, overridden, "override must be bit-transparent");
    }
}
