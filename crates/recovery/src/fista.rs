//! FISTA — fast iterative shrinkage-thresholding (Beck & Teboulle 2009).
//!
//! Solves the LASSO `min_α ½‖Aα − y‖² + λ‖α‖₁` with Nesterov momentum.
//! This is the default full-frame decoder: at the sensor's native size
//! the operator is matrix-free and each iteration costs two operator
//! applications.

use crate::shrink::soft_threshold;
use crate::solver::{norm_seeds, SolveResult, Solver, SolverCaps};
use crate::workspace::SolverWorkspace;
use crate::{check_dims, Recovery, RecoveryError, SolveStats};
use tepics_cs::op::{self, LinearOperator};

/// How the regularization weight λ is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LambdaRule {
    /// Use the given absolute λ.
    Absolute(f64),
    /// `λ = ratio · ‖Aᵀy‖∞` — scale-free; `ratio = 1` yields the zero
    /// solution, typical values are 0.01–0.1.
    RatioOfMax(f64),
}

/// FISTA solver configuration (non-consuming builder).
///
/// # Examples
///
/// ```
/// use tepics_cs::{DenseMatrix, LinearOperator};
/// use tepics_recovery::Fista;
/// use tepics_util::SplitMix64;
///
/// let mut rng = SplitMix64::new(1);
/// let a = DenseMatrix::from_fn(12, 24, |_, _| rng.next_gaussian() / 12f64.sqrt());
/// let mut x = vec![0.0; 24];
/// x[7] = 2.0;
/// let y = a.apply_vec(&x);
/// let rec = Fista::new().lambda_ratio(0.01).max_iter(1000).solve(&a, &y).unwrap();
/// assert!((rec.coefficients[7] - 2.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fista {
    lambda: LambdaRule,
    max_iter: usize,
    tol: f64,
    step: Option<f64>,
    norm_est_iters: usize,
}

impl Fista {
    /// Creates a solver with defaults: `λ = 0.02·‖Aᵀy‖∞`, 400
    /// iterations, tolerance 1e-6.
    pub fn new() -> Self {
        Fista {
            lambda: LambdaRule::RatioOfMax(0.02),
            max_iter: 400,
            tol: 1e-6,
            step: None,
            norm_est_iters: 30,
        }
    }

    /// Sets an absolute λ.
    pub fn lambda(&mut self, lambda: f64) -> &mut Self {
        self.lambda = LambdaRule::Absolute(lambda);
        self
    }

    /// Sets λ as a fraction of `‖Aᵀy‖∞`.
    pub fn lambda_ratio(&mut self, ratio: f64) -> &mut Self {
        self.lambda = LambdaRule::RatioOfMax(ratio);
        self
    }

    /// Iteration cap.
    pub fn max_iter(&mut self, n: usize) -> &mut Self {
        self.max_iter = n;
        self
    }

    /// Relative-change stopping tolerance.
    pub fn tol(&mut self, tol: f64) -> &mut Self {
        self.tol = tol;
        self
    }

    /// Overrides the gradient step `1/L` (skips norm estimation).
    pub fn step(&mut self, step: f64) -> &mut Self {
        self.step = Some(step);
        self
    }

    /// Runs the solver with freshly allocated buffers.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::DimensionMismatch`] if `y` does not match
    /// the operator, or [`RecoveryError::InvalidParameter`] for
    /// non-positive λ/step configurations.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
    ) -> Result<Recovery, RecoveryError> {
        self.solve_with(a, y, &mut SolverWorkspace::new())
    }

    /// Runs the solver reusing `workspace` buffers; results are
    /// bit-identical to [`Fista::solve`], with no allocations inside the
    /// iteration loop once the workspace is warm.
    ///
    /// # Errors
    ///
    /// Same as [`Fista::solve`].
    // tidy:alloc-free
    pub fn solve_with<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> Result<Recovery, RecoveryError> {
        check_dims(a.rows(), y)?;
        let n = a.cols();
        workspace.prepare(a.rows(), n);
        let SolverWorkspace {
            alpha,
            alpha_prev,
            z,
            grad,
            resid,
            ..
        } = workspace;
        // λ resolution (grad doubles as the Aᵀy buffer here; the loop
        // below overwrites it before reading it again).
        a.apply_adjoint(y, grad);
        let lambda = match self.lambda {
            LambdaRule::Absolute(l) => l,
            LambdaRule::RatioOfMax(r) => {
                if r <= 0.0 {
                    return Err(RecoveryError::InvalidParameter(
                        "lambda ratio must be positive".into(),
                    ));
                }
                r * grad.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
            }
        };
        if lambda < 0.0 {
            return Err(RecoveryError::InvalidParameter(
                "lambda must be non-negative".into(),
            ));
        }
        // Step size 1/L with L = ‖A‖² (5% safety margin).
        let step = match self.step {
            Some(s) if s > 0.0 => s,
            Some(_) => {
                return Err(RecoveryError::InvalidParameter(
                    "step must be positive".into(),
                ))
            }
            None => {
                let norm = op::operator_norm_est(a, self.norm_est_iters, norm_seeds::FISTA);
                if norm == 0.0 {
                    // Zero operator: solution is zero.
                    return Ok(Recovery {
                        // tidy:allow(alloc: zero-operator early exit, before the iteration loop)
                        coefficients: vec![0.0; n],
                        stats: SolveStats {
                            iterations: 0,
                            residual_norm: op::norm2(y),
                            converged: true,
                        },
                    });
                }
                1.0 / (norm * norm * 1.05)
            }
        };

        let mut t = 1.0f64;
        let mut iterations = 0;
        let mut converged = false;
        for it in 0..self.max_iter {
            iterations = it + 1;
            // grad = Aᵀ(Az − y)
            a.apply(z, resid);
            for (r, &yi) in resid.iter_mut().zip(y) {
                *r -= yi;
            }
            a.apply_adjoint(resid, grad);
            // Proximal step from z.
            alpha_prev.copy_from_slice(alpha);
            for i in 0..n {
                alpha[i] = z[i] - step * grad[i];
            }
            soft_threshold(alpha, lambda * step);
            // Momentum.
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            for i in 0..n {
                z[i] = alpha[i] + beta * (alpha[i] - alpha_prev[i]);
            }
            t = t_next;
            // Relative-change stopping rule.
            let mut diff = 0.0;
            let mut norm = 0.0;
            for i in 0..n {
                let d = alpha[i] - alpha_prev[i];
                diff += d * d;
                norm += alpha[i] * alpha[i];
            }
            if diff.sqrt() <= self.tol * norm.sqrt().max(1e-12) {
                converged = true;
                break;
            }
        }
        a.apply(alpha, resid);
        for (r, &yi) in resid.iter_mut().zip(y) {
            *r -= yi;
        }
        Ok(Recovery {
            // tidy:allow(alloc: the returned coefficient vector, once per solve)
            coefficients: alpha.clone(),
            stats: SolveStats {
                iterations,
                residual_norm: op::norm2(resid),
                converged,
            },
        })
    }
}

impl Default for Fista {
    fn default() -> Self {
        Fista::new()
    }
}

impl Solver for Fista {
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            name: "fista",
            norm_seed: Some(norm_seeds::FISTA),
            column_hungry: false,
        }
    }

    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult {
        Fista::solve_with(self, a, y, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    fn gaussian_problem(
        rows: usize,
        cols: usize,
        k: usize,
        seed: u64,
    ) -> (DenseMatrix, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let scale = 1.0 / (rows as f64).sqrt();
        let a = DenseMatrix::from_fn(rows, cols, |_, _| rng.next_gaussian() * scale);
        let mut x = vec![0.0; cols];
        let mut placed = 0;
        while placed < k {
            let i = rng.next_below(cols as u64) as usize;
            if x[i] == 0.0 {
                x[i] = if rng.next_bool() { 1.0 } else { -1.0 } * (0.5 + rng.next_f64());
                placed += 1;
            }
        }
        let y = a.apply_vec(&x);
        (a, x, y)
    }

    #[test]
    fn recovers_sparse_signal_support() {
        let (a, x, y) = gaussian_problem(40, 100, 5, 7);
        let rec = Fista::new()
            .lambda_ratio(0.01)
            .max_iter(2000)
            .tol(1e-9)
            .solve(&a, &y)
            .unwrap();
        // Support match: the 5 largest recovered entries are the truth.
        let mut idx: Vec<usize> = (0..100).collect();
        idx.sort_by(|&p, &q| {
            rec.coefficients[q]
                .abs()
                .partial_cmp(&rec.coefficients[p].abs())
                .unwrap()
        });
        for &i in &idx[..5] {
            assert!(x[i] != 0.0, "recovered support contains spurious atom {i}");
        }
        // Values close after shrinkage.
        for (i, &xi) in x.iter().enumerate() {
            assert!(
                (rec.coefficients[i] - xi).abs() < 0.15,
                "coef {i}: {} vs {}",
                rec.coefficients[i],
                xi
            );
        }
    }

    #[test]
    fn large_lambda_gives_zero_solution() {
        let (a, _, y) = gaussian_problem(20, 50, 3, 9);
        let rec = Fista::new().lambda_ratio(1.1).solve(&a, &y).unwrap();
        assert!(rec.coefficients.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_measurements_give_zero_solution() {
        let (a, _, _) = gaussian_problem(20, 50, 3, 11);
        let rec = Fista::new().solve(&a, &[0.0; 20]).unwrap();
        assert!(rec.coefficients.iter().all(|&v| v == 0.0));
        assert!(rec.stats.converged);
    }

    #[test]
    fn fista_reaches_lower_objective_than_ista_at_equal_budget() {
        use crate::ista::Ista;
        // Ill-conditioned problem (correlated columns) where momentum
        // matters; compare objective after a fixed iteration budget.
        let mut rng = SplitMix64::new(13);
        let common: Vec<f64> = (0..40).map(|_| rng.next_gaussian()).collect();
        let a = DenseMatrix::from_fn(40, 80, |r, _| {
            (rng.next_gaussian() + 2.0 * common[r]) / 40f64.sqrt()
        });
        let mut x = vec![0.0; 80];
        x[9] = 1.0;
        x[33] = -1.0;
        x[71] = 0.7;
        let y = a.apply_vec(&x);
        let aty = a.apply_adjoint_vec(&y);
        let lambda = 0.02 * aty.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let objective = |alpha: &[f64]| {
            let r = tepics_cs::op::sub(&a.apply_vec(alpha), &y);
            0.5 * tepics_cs::op::dot(&r, &r) + lambda * alpha.iter().map(|v| v.abs()).sum::<f64>()
        };
        let budget = 80;
        let f = Fista::new()
            .lambda(lambda)
            .tol(0.0)
            .max_iter(budget)
            .solve(&a, &y)
            .unwrap();
        let i = Ista::new()
            .lambda(lambda)
            .tol(0.0)
            .max_iter(budget)
            .solve(&a, &y)
            .unwrap();
        let fo = objective(&f.coefficients);
        let io = objective(&i.coefficients);
        assert!(
            fo < io,
            "FISTA objective {fo:.6e} should beat ISTA {io:.6e} at {budget} iterations"
        );
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (a, _, _) = gaussian_problem(10, 20, 2, 1);
        let err = Fista::new().solve(&a, &[0.0; 9]).unwrap_err();
        assert!(matches!(
            err,
            RecoveryError::DimensionMismatch {
                expected: 10,
                actual: 9
            }
        ));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let (a, _, y) = gaussian_problem(10, 20, 2, 2);
        assert!(Fista::new().lambda_ratio(0.0).solve(&a, &y).is_err());
        assert!(Fista::new().step(-1.0).solve(&a, &y).is_err());
    }

    #[test]
    fn explicit_step_matches_auto_estimate() {
        let (a, _, y) = gaussian_problem(30, 60, 3, 21);
        let auto = Fista::new()
            .lambda_ratio(0.02)
            .max_iter(3000)
            .tol(1e-10)
            .solve(&a, &y)
            .unwrap();
        let norm = tepics_cs::op::operator_norm_est(&a, 60, 5);
        let manual = Fista::new()
            .lambda_ratio(0.02)
            .step(1.0 / (norm * norm * 1.05))
            .max_iter(3000)
            .tol(1e-10)
            .solve(&a, &y)
            .unwrap();
        for (p, q) in auto.coefficients.iter().zip(&manual.coefficients) {
            assert!((p - q).abs() < 1e-5);
        }
    }
}
