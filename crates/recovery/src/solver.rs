//! The unified [`Solver`] trait.
//!
//! Every recovery algorithm in this crate — FISTA, ISTA, IHT, AMP,
//! CoSaMP, OMP, CGLS, and the [`Debias`](crate::debias::Debias)
//! wrapper — implements one object-safe interface:
//! `solve_with(&self, op, y, workspace)` over a `&dyn LinearOperator`,
//! returning a [`Recovery`] and reusing a [`SolverWorkspace`]. A decoder
//! can therefore hold *any* solver behind `&dyn Solver`/`Box<dyn
//! Solver>` and swap algorithms per workload without touching its
//! pipeline, and every solver — not just the proximal family — runs
//! allocation-free once its workspace is warm.
//!
//! Results through the trait are **bit-identical** to the inherent
//! `solve`/`solve_with` methods on the concrete types: the trait impls
//! are one-line delegations, pinned down by property tests at the
//! workspace root.
//!
//! [`SolverCaps`] carries the capability metadata a host needs to serve
//! a solver well without knowing its type: the seed of its internal
//! operator-norm estimate (so a cache can memoize the power iteration
//! per solver — different solvers use different seeds, and mixing them
//! would silently change results) and whether the solver touches the
//! operator column-wise (so a host knows to attach a
//! [`ColumnMatrix`](tepics_cs::colview::ColumnMatrix) view).

use crate::workspace::SolverWorkspace;
use crate::{Recovery, RecoveryError};
use tepics_cs::op::LinearOperator;

/// The result type shared by every solver entry point.
pub type SolveResult = Result<Recovery, RecoveryError>;

/// Deterministic power-iteration seeds of the solvers' internal
/// operator-norm estimates. A host that memoizes norms (to skip the
/// power iteration on warm paths) must key them by this seed: each
/// solver derives its step/scale from *its own* seeded estimate, and
/// serving one solver another's estimate would change results.
pub mod norm_seeds {
    /// [`Fista`](crate::Fista)'s step-size estimate.
    pub const FISTA: u64 = 0x0F1A57A;
    /// [`Ista`](crate::Ista)'s step-size estimate.
    pub const ISTA: u64 = 0x157A;
    /// [`Iht`](crate::Iht)'s fallback-step estimate.
    pub const IHT: u64 = 0x1147;
    /// [`Amp`](crate::Amp)'s operator-scale estimate.
    pub const AMP: u64 = 0xA3B;
}

/// Capability metadata of a [`Solver`] (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCaps {
    /// Short stable identifier (`"fista"`, `"omp"`, …) for reports and
    /// diagnostics.
    pub name: &'static str,
    /// Seed of the solver's internal `‖A‖` power-iteration estimate,
    /// when it runs one and accepts a precomputed override
    /// ([`norm_seeds`] lists the values). `None` for solvers that never
    /// estimate a norm (the greedy pursuits, CGLS).
    pub norm_seed: Option<u64>,
    /// `true` if the solver touches operator columns heavily enough —
    /// per-iteration extraction or repeated restricted least squares
    /// over growing supports — to justify materializing *all* columns
    /// up front (the greedy pursuits). Solvers whose column work is one
    /// support-restricted re-fit (the [`Debias`](crate::Debias)
    /// wrapper's CGLS pass) inherit their inner solver's appetite: a
    /// full materialization would cost more than the single re-fit it
    /// accelerates, though they do use a view when one is already
    /// attached.
    pub column_hungry: bool,
}

/// A sparse-recovery algorithm behind one object-safe interface.
///
/// # Examples
///
/// Solvers are interchangeable behind `&dyn Solver`:
///
/// ```
/// use tepics_cs::{DenseMatrix, LinearOperator};
/// use tepics_recovery::{Fista, Omp, Solver, SolverWorkspace};
///
/// let a = DenseMatrix::from_fn(8, 16, |r, c| {
///     ((r * 31 + c * 17 + (r * c) % 7) % 13) as f64 / 13.0 - 0.5
/// });
/// let mut x = vec![0.0; 16];
/// x[3] = 1.5;
/// let y = a.apply_vec(&x);
///
/// let fista = Fista::new();
/// let omp = Omp::new(2);
/// let mut ws = SolverWorkspace::new();
/// for solver in [&fista as &dyn Solver, &omp] {
///     let rec = solver.solve_with(&a, &y, &mut ws).unwrap();
///     assert!((rec.coefficients[3] - 1.5).abs() < 0.2, "{}", solver.caps().name);
/// }
/// ```
pub trait Solver {
    /// Capability metadata (stable name, norm seed, column appetite).
    fn caps(&self) -> SolverCaps;

    /// Runs the solver reusing `workspace` buffers; bit-identical to
    /// [`Solver::solve`] and allocation-free inside the solver loop once
    /// the workspace is warm.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::DimensionMismatch`] if `y` does not match the
    /// operator, plus each solver's parameter/breakdown errors.
    fn solve_with(
        &self,
        a: &dyn LinearOperator,
        y: &[f64],
        workspace: &mut SolverWorkspace,
    ) -> SolveResult;

    /// Runs the solver with freshly allocated buffers.
    ///
    /// # Errors
    ///
    /// Same as [`Solver::solve_with`].
    fn solve(&self, a: &dyn LinearOperator, y: &[f64]) -> SolveResult {
        self.solve_with(a, y, &mut SolverWorkspace::new())
    }
}

impl std::fmt::Debug for dyn Solver + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dyn Solver({})", self.caps().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Amp, CoSaMp, Fista, Iht, Ista, Omp};
    use tepics_cs::DenseMatrix;
    use tepics_util::SplitMix64;

    fn problem() -> (DenseMatrix, Vec<f64>) {
        let mut rng = SplitMix64::new(77);
        let a = DenseMatrix::from_fn(30, 60, |_, _| rng.next_gaussian() / 30f64.sqrt());
        let mut x = vec![0.0; 60];
        x[11] = 2.0;
        x[42] = -1.0;
        (a.clone(), a.apply_vec(&x))
    }

    #[test]
    fn caps_names_are_unique_and_stable() {
        let fista = Fista::new();
        let ista = Ista::new();
        let iht = Iht::new(2);
        let amp = Amp::new();
        let omp = Omp::new(2);
        let cosamp = CoSaMp::new(2);
        let cgls = crate::cg::Cgls::default();
        let solvers: [&dyn Solver; 7] = [&fista, &ista, &iht, &amp, &omp, &cosamp, &cgls];
        let mut names: Vec<&str> = solvers.iter().map(|s| s.caps().name).collect();
        assert_eq!(
            names,
            vec!["fista", "ista", "iht", "amp", "omp", "cosamp", "cgls"]
        );
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7, "duplicate solver names");
    }

    #[test]
    fn trait_dispatch_equals_direct_call() {
        let (a, y) = problem();
        let fista = Fista::new();
        let direct = fista.solve(&a, &y).unwrap();
        let dynamic = Solver::solve(&fista as &dyn Solver, &a, &y).unwrap();
        assert_eq!(direct, dynamic);
    }

    #[test]
    fn norm_seeds_match_caps() {
        assert_eq!(Fista::new().caps().norm_seed, Some(norm_seeds::FISTA));
        assert_eq!(Ista::new().caps().norm_seed, Some(norm_seeds::ISTA));
        assert_eq!(Iht::new(1).caps().norm_seed, Some(norm_seeds::IHT));
        assert_eq!(Amp::new().caps().norm_seed, Some(norm_seeds::AMP));
        assert_eq!(Omp::new(1).caps().norm_seed, None);
        assert!(Omp::new(1).caps().column_hungry);
        assert!(CoSaMp::new(1).caps().column_hungry);
    }
}
