//! Reusable solver buffers.
//!
//! Every solver in this crate works on a handful of dense vectors
//! (iterates, gradients, residuals, gathered columns, least-squares
//! scratch). A cold [`solve`](crate::Solver::solve) call allocates them
//! afresh; a decoder that runs one solve per frame — the streaming
//! deployment — would pay that allocation and page-touch cost on every
//! frame. [`SolverWorkspace`] owns those buffers so repeated solves
//! reuse the same memory: every `solve_with` path in this crate —
//! including the greedy pursuits and the nested CGLS of the debias pass
//! — takes one and resizes it (a no-op once warm, since
//! shrinking-then-growing a `Vec` within its capacity never
//! reallocates).
//!
//! Reuse is value-transparent: every buffer is reset to the exact state
//! a fresh allocation would have, so a warm solve is bit-identical to a
//! cold one.
//!
//! The buffers fall into three groups, sized independently so nesting
//! works (CoSaMP's outer loop keeps its iterate buffers live while the
//! inner CGLS runs on the `lsq_*` set):
//!
//! * **iterate buffers** (`alpha`…`rows_tmp2`) — the proximal/
//!   thresholding/message-passing loops;
//! * **greedy buffers** (`support`…`chol`) — atom bookkeeping, gathered
//!   columns, and the growing Cholesky of OMP/CoSaMP;
//! * **least-squares buffers** (`lsq_*`, `restrict_*`) — the CGLS
//!   vectors and the restricted operator's scatter/gather scratch, used
//!   by [`Cgls`](crate::cg::Cgls), CoSaMP's re-fit, and
//!   [`debias`](crate::debias).

use tepics_cs::chol::GrowingCholesky;
use tepics_cs::ComposedScratch;

/// Reusable buffers shared by every solver in the crate (see the module
/// docs for the three buffer groups).
///
/// # Examples
///
/// ```
/// use tepics_cs::{DenseMatrix, LinearOperator};
/// use tepics_recovery::{Fista, SolverWorkspace};
/// use tepics_util::SplitMix64;
///
/// let mut rng = SplitMix64::new(1);
/// let a = DenseMatrix::from_fn(12, 24, |_, _| rng.next_gaussian() / 12f64.sqrt());
/// let mut x = vec![0.0; 24];
/// x[7] = 2.0;
/// let y = a.apply_vec(&x);
/// let mut ws = SolverWorkspace::new();
/// // Both solves share the same buffers; results match a cold solve.
/// let warm = Fista::new().solve_with(&a, &y, &mut ws).unwrap();
/// let again = Fista::new().solve_with(&a, &y, &mut ws).unwrap();
/// assert_eq!(warm, again);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    // Iterate buffers (coefficient dimension).
    pub(crate) alpha: Vec<f64>,
    pub(crate) alpha_prev: Vec<f64>,
    pub(crate) z: Vec<f64>,
    pub(crate) grad: Vec<f64>,
    // Iterate buffers (measurement dimension).
    pub(crate) resid: Vec<f64>,
    pub(crate) rows_tmp: Vec<f64>,
    pub(crate) rows_tmp2: Vec<f64>,
    // Greedy buffers.
    pub(crate) support: Vec<usize>,
    pub(crate) candidate: Vec<usize>,
    pub(crate) keep: Vec<usize>,
    pub(crate) columns: Vec<f64>,
    pub(crate) gram_cross: Vec<f64>,
    pub(crate) rhs: Vec<f64>,
    pub(crate) small: Vec<f64>,
    pub(crate) small2: Vec<f64>,
    pub(crate) chol: Option<GrowingCholesky>,
    // Least-squares buffers (nested CGLS + restricted-operator scratch).
    pub(crate) lsq_x: Vec<f64>,
    pub(crate) lsq_r: Vec<f64>,
    pub(crate) lsq_s: Vec<f64>,
    pub(crate) lsq_p: Vec<f64>,
    pub(crate) lsq_q: Vec<f64>,
    pub(crate) restrict_in: Vec<f64>,
    pub(crate) restrict_out: Vec<f64>,
    // Composed-operator donation (see `take_composed`).
    pub(crate) composed: ComposedScratch,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow to the problem size on first
    /// use and are reused afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes the iterate buffers for a `rows`×`cols` problem and
    /// zeroes them, restoring the exact state of freshly allocated
    /// buffers. (The greedy and least-squares buffers are prepared by
    /// their consumers, which likewise clear before every read.)
    pub(crate) fn prepare(&mut self, rows: usize, cols: usize) {
        for buf in [
            &mut self.alpha,
            &mut self.alpha_prev,
            &mut self.z,
            &mut self.grad,
        ] {
            buf.clear();
            buf.resize(cols, 0.0);
        }
        for buf in [&mut self.resid, &mut self.rows_tmp, &mut self.rows_tmp2] {
            buf.clear();
            buf.resize(rows, 0.0);
        }
    }

    /// Takes the composed-operator scratch held by this workspace, for
    /// donation to a freshly built
    /// [`ComposedOperator`](tepics_cs::ComposedOperator) via
    /// `with_scratch`. The decoder's per-frame pattern is
    /// take → solve → [`store_composed`](SolverWorkspace::store_composed),
    /// so the composition's pixel/dictionary/fused-kernel buffers stay
    /// warm across frames even though the operator itself is rebuilt.
    #[must_use]
    pub fn take_composed(&mut self) -> ComposedScratch {
        std::mem::take(&mut self.composed)
    }

    /// Returns a donation taken with
    /// [`take_composed`](SolverWorkspace::take_composed) after the
    /// solve, keeping the buffers for the next frame.
    pub fn store_composed(&mut self, scratch: ComposedScratch) {
        self.composed = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_resets_to_fresh_state() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(3, 5);
        ws.alpha.iter_mut().for_each(|v| *v = 7.0);
        ws.resid.iter_mut().for_each(|v| *v = -1.0);
        ws.prepare(4, 6);
        assert_eq!(ws.alpha, vec![0.0; 6]);
        assert_eq!(ws.alpha_prev, vec![0.0; 6]);
        assert_eq!(ws.z, vec![0.0; 6]);
        assert_eq!(ws.grad, vec![0.0; 6]);
        assert_eq!(ws.resid, vec![0.0; 4]);
        assert_eq!(ws.rows_tmp, vec![0.0; 4]);
        assert_eq!(ws.rows_tmp2, vec![0.0; 4]);
    }

    #[test]
    fn shrinking_reuse_keeps_capacity() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(100, 200);
        let cap = ws.alpha.capacity();
        ws.prepare(10, 20);
        ws.prepare(100, 200);
        assert_eq!(ws.alpha.capacity(), cap, "reuse must not reallocate");
    }

    #[test]
    fn chol_is_reused_across_resets() {
        let mut ws = SolverWorkspace::new();
        let chol = ws
            .chol
            .get_or_insert_with(|| GrowingCholesky::with_capacity(8));
        chol.push(&[], 4.0).unwrap();
        assert_eq!(chol.dim(), 1);
        chol.reset(4);
        assert_eq!(chol.dim(), 0, "reset empties the factorization");
        chol.push(&[], 9.0).unwrap();
        assert_eq!(chol.solve(&[9.0]), vec![1.0]);
    }
}
