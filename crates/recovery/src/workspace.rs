//! Reusable solver buffers.
//!
//! Every iterative solver in this crate works on a handful of dense
//! vectors (iterates, gradient, residual). A cold [`solve`] call
//! allocates them afresh; a decoder that runs one solve per frame —
//! the streaming deployment — would pay that allocation and page-touch
//! cost on every frame. [`SolverWorkspace`] owns those buffers so
//! repeated solves reuse the same memory: the `solve_with` variants of
//! [`Fista`](crate::Fista), [`Ista`](crate::Ista) and
//! [`Iht`](crate::Iht) take one and resize it (a no-op once warm, since
//! shrinking-then-growing a `Vec` within its capacity never
//! reallocates).
//!
//! Reuse is value-transparent: every buffer is reset to the exact state
//! a fresh allocation would have, so a warm solve is bit-identical to a
//! cold one.
//!
//! [`solve`]: crate::Fista::solve

/// Reusable buffers for the proximal-gradient/thresholding solvers
/// (`alpha`, `alpha_prev`, `z`, `grad` of the coefficient dimension;
/// `resid`, `rows_tmp` of the measurement dimension).
///
/// # Examples
///
/// ```
/// use tepics_cs::{DenseMatrix, LinearOperator};
/// use tepics_recovery::{Fista, SolverWorkspace};
/// use tepics_util::SplitMix64;
///
/// let mut rng = SplitMix64::new(1);
/// let a = DenseMatrix::from_fn(12, 24, |_, _| rng.next_gaussian() / 12f64.sqrt());
/// let mut x = vec![0.0; 24];
/// x[7] = 2.0;
/// let y = a.apply_vec(&x);
/// let mut ws = SolverWorkspace::new();
/// // Both solves share the same buffers; results match a cold solve.
/// let warm = Fista::new().solve_with(&a, &y, &mut ws).unwrap();
/// let again = Fista::new().solve_with(&a, &y, &mut ws).unwrap();
/// assert_eq!(warm, again);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    pub(crate) alpha: Vec<f64>,
    pub(crate) alpha_prev: Vec<f64>,
    pub(crate) z: Vec<f64>,
    pub(crate) grad: Vec<f64>,
    pub(crate) resid: Vec<f64>,
    pub(crate) rows_tmp: Vec<f64>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow to the problem size on first
    /// use and are reused afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes every buffer for a `rows`×`cols` problem and zeroes it,
    /// restoring the exact state of freshly allocated buffers.
    pub(crate) fn prepare(&mut self, rows: usize, cols: usize) {
        for buf in [
            &mut self.alpha,
            &mut self.alpha_prev,
            &mut self.z,
            &mut self.grad,
        ] {
            buf.clear();
            buf.resize(cols, 0.0);
        }
        for buf in [&mut self.resid, &mut self.rows_tmp] {
            buf.clear();
            buf.resize(rows, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_resets_to_fresh_state() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(3, 5);
        ws.alpha.iter_mut().for_each(|v| *v = 7.0);
        ws.resid.iter_mut().for_each(|v| *v = -1.0);
        ws.prepare(4, 6);
        assert_eq!(ws.alpha, vec![0.0; 6]);
        assert_eq!(ws.alpha_prev, vec![0.0; 6]);
        assert_eq!(ws.z, vec![0.0; 6]);
        assert_eq!(ws.grad, vec![0.0; 6]);
        assert_eq!(ws.resid, vec![0.0; 4]);
        assert_eq!(ws.rows_tmp, vec![0.0; 4]);
    }

    #[test]
    fn shrinking_reuse_keeps_capacity() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(100, 200);
        let cap = ws.alpha.capacity();
        ws.prepare(10, 20);
        ws.prepare(100, 200);
        assert_eq!(ws.alpha.capacity(), cap, "reuse must not reallocate");
    }
}
