//! Compressed-sensing operators for the TEPICS pipeline.
//!
//! This crate is the linear-algebra layer between the sensor (which
//! produces compressed samples `y = Φ x`) and the recovery algorithms
//! (which need `A = Φ Ψ` and its adjoint):
//!
//! * [`LinearOperator`] — the matrix-free abstraction every solver in
//!   `tepics-recovery` consumes; includes power-iteration norm
//!   estimation.
//! * [`DenseMatrix`] / [`chol`] / [`eig`] — the small dense kernel:
//!   explicit matrices, (incremental) Cholesky for greedy solvers, and
//!   Jacobi eigenvalues for RIP estimation.
//! * [`measurement`] — the measurement ensembles: the paper's
//!   XOR-structured CA strategy ([`XorMeasurement`]), dense binary
//!   ensembles (Bernoulli / thresholded Gaussian / LFSR / Hadamard via
//!   any [`tepics_ca::BitPatternSource`]), and the block-diagonal
//!   ensemble of block-based CS.
//! * [`dictionary`] — sparsifying dictionaries Ψ (2-D DCT, Haar,
//!   identity) plus the zero-mean wrapper used by the mean-split
//!   decoder.
//! * [`operator`] — composition `Φ ∘ Ψ` and the signed (±1) view of a
//!   binary measurement.
//! * [`fused`] — the one-pass `ΦᵀΨᵀ` / `ΨΦ` streaming kernels: a
//!   row-streamed measurement protocol plus a row-staged dictionary
//!   protocol, fused block-by-block so the intermediate pixel image
//!   never round-trips through memory. [`ComposedOperator`] dispatches
//!   to them automatically when both sides qualify.
//! * [`coherence`] — mutual coherence and empirical RIP-constant
//!   estimation, used by the `matrices` experiment to compare the CA
//!   strategy against Bernoulli/LFSR/Hadamard.
//!
//! # Examples
//!
//! ```
//! use tepics_cs::measurement::DenseBinaryMeasurement;
//! use tepics_cs::LinearOperator;
//!
//! let phi = DenseBinaryMeasurement::bernoulli(16, 64, 7, 0.5);
//! let x = vec![1.0; 64];
//! let mut y = vec![0.0; 16];
//! phi.apply(&x, &mut y);
//! // Each row sums ~32 ones.
//! assert!(y.iter().all(|&v| v > 10.0 && v < 55.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chol;
pub mod coherence;
pub mod colview;
pub mod dictionary;
pub mod eig;
pub mod fused;
pub mod mat;
pub mod measurement;
pub mod op;
pub mod operator;

pub use colview::ColumnMatrix;
pub use dictionary::{Dct2dDictionary, Dictionary, Haar2dDictionary, IdentityDictionary};
pub use fused::{FusedScratch, RowStagedDictionary, RowStreamedOperator, StagedDictionary};
pub use mat::DenseMatrix;
pub use measurement::{BlockDiagonalMeasurement, DenseBinaryMeasurement, XorMeasurement};
pub use op::LinearOperator;
pub use operator::{ComposedOperator, ComposedScratch, SignedMeasurementOp};
