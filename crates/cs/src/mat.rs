//! Dense matrices.
//!
//! Small explicit matrices back the block-based CS baseline (8×8 blocks
//! → 64-column matrices), greedy solvers' Gram systems, and the
//! coherence/RIP analyses. Storage is row-major `f64`.

use crate::op::LinearOperator;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use tepics_cs::{DenseMatrix, LinearOperator};
///
/// let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let y = a.apply_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        DenseMatrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn col_count(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Writes element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = v;
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    pub fn transposed(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.data[k * other.cols + c];
                }
            }
        }
        out
    }

    /// Gram matrix `AᵀA` (`cols × cols`).
    pub fn gram(&self) -> DenseMatrix {
        let mut g = DenseMatrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for (j, &rj) in row.iter().enumerate().skip(i) {
                    g.data[i * self.cols + j] += ri * rj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g.data[i * self.cols + j] = g.data[j * self.cols + i];
            }
        }
        g
    }

    /// Euclidean norm of column `j`.
    pub fn column_norm(&self, j: usize) -> f64 {
        assert!(j < self.cols, "column out of range");
        (0..self.rows)
            .map(|r| {
                let v = self.data[r * self.cols + j];
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every column to unit norm (zero columns are left as-is).
    pub fn normalize_columns(&mut self) {
        for j in 0..self.cols {
            let n = self.column_norm(j);
            if n > 0.0 {
                for r in 0..self.rows {
                    self.data[r * self.cols + j] /= n;
                }
            }
        }
    }
}

impl LinearOperator for DenseMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(y.len(), self.rows, "output length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = crate::op::dot(self.row(r), x);
        }
    }

    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "input length mismatch");
        assert_eq!(x.len(), self.cols, "output length mismatch");
        x.fill(0.0);
        for (r, &yr) in y.iter().enumerate() {
            crate::op::axpy(yr, self.row(r), x);
        }
    }

    fn column_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.cols, "column {j} out of range");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.data[r * self.cols + j];
        }
    }

    fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of range");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + j])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::adjoint_mismatch;

    #[test]
    fn matvec_and_adjoint_agree_with_manual() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![-1.0, 3.0, 1.0]]);
        assert_eq!(a.apply_vec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(a.apply_adjoint_vec(&[1.0, 1.0]), vec![0.0, 3.0, 3.0]);
        assert!(adjoint_mismatch(&a, 20, 9) < 1e-12);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = DenseMatrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = DenseMatrix::from_fn(5, 3, |r, c| ((r + 2 * c) % 4) as f64 - 1.5);
        let g1 = a.gram();
        let g2 = a.transposed().matmul(&a);
        for (x, y) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(4, 6, |r, c| (r * 6 + c) as f64);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn column_normalization() {
        let mut a = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 0.0]]);
        a.normalize_columns();
        assert!((a.column_norm(0) - 1.0).abs() < 1e-12);
        assert_eq!(a.column_norm(1), 0.0); // zero column untouched
        assert!((a.get(0, 0) - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn bad_matmul_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        a.matmul(&b);
    }
}
