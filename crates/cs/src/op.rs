//! The matrix-free linear-operator abstraction.
//!
//! Recovery at the sensor's native scale (4096 pixels, ~1600
//! measurements) never materializes `Φ Ψ` as a dense matrix; solvers
//! only need `A x` and `Aᵀ y`. [`LinearOperator`] captures exactly that,
//! and this module also hosts the small vector kernels (`dot`, `norm2`,
//! `axpy`) shared by the solvers.

/// A real linear map `A : R^cols → R^rows` exposed through forward and
/// adjoint applications.
///
/// Implementations must satisfy the adjoint identity
/// `⟨A x, y⟩ = ⟨x, Aᵀ y⟩` — the test suites of the implementing types
/// verify it numerically.
pub trait LinearOperator {
    /// Output dimension (number of measurements for Φ).
    fn rows(&self) -> usize;

    /// Input dimension (number of pixels / coefficients).
    fn cols(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len() != cols()` or
    /// `y.len() != rows()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Computes `x = Aᵀ y`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `y.len() != rows()` or
    /// `x.len() != cols()`.
    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]);

    /// Convenience allocating forward application.
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows()];
        self.apply(x, &mut y);
        y
    }

    /// Convenience allocating adjoint application.
    fn apply_adjoint_vec(&self, y: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.cols()];
        self.apply_adjoint(y, &mut x);
        x
    }

    /// Materializes column `j` (`A e_j`). O(rows·cols) for matrix-free
    /// operators; greedy solvers call this only for selected atoms.
    fn column(&self, j: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.column_into(j, &mut out);
        out
    }

    /// Writes column `j` (`A e_j`) into `out` without allocating the
    /// result. The default builds a unit vector per call; operators with
    /// cheaper column access (dense storage, attached
    /// [`ColumnMatrix`](crate::colview::ColumnMatrix) views) override it.
    ///
    /// # Panics
    ///
    /// Implementations panic if `j >= cols()` or `out.len() != rows()`.
    fn column_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.cols(), "column {j} out of range");
        assert_eq!(out.len(), self.rows(), "output length mismatch");
        let mut e = vec![0.0; self.cols()];
        e[j] = 1.0;
        self.apply(&e, out);
    }

    /// The column-materialized view of this operator, when one is
    /// attached or intrinsic. Consumers that work column-wise (greedy
    /// pursuit, restricted least squares) switch to the materialized
    /// path when this returns `Some`; the default is `None`.
    fn column_view(&self) -> Option<&crate::colview::ColumnMatrix> {
        None
    }

    /// The row-streaming view of this operator, when it measures a 2-D
    /// pixel grid and can produce/consume the image block-of-rows at a
    /// time (see [`crate::fused`]).
    /// [`ComposedOperator`](crate::ComposedOperator) uses it to fuse Φ
    /// with the dictionary's row pass. The default is `None`;
    /// [`XorMeasurement`](crate::XorMeasurement) overrides it.
    fn row_streamed(&self) -> Option<&dyn crate::fused::RowStreamedOperator> {
        None
    }
}

/// Estimates the spectral norm `‖A‖₂` by power iteration on `AᵀA`.
///
/// `iters` in the 20–50 range is ample for the step-size estimates the
/// solvers need (they only require an upper bound within ~1%; callers
/// multiply by a safety margin anyway).
///
/// # Panics
///
/// Panics if the operator has zero rows or columns.
pub fn operator_norm_est<A: LinearOperator + ?Sized>(a: &A, iters: usize, seed: u64) -> f64 {
    assert!(a.rows() > 0 && a.cols() > 0, "degenerate operator");
    let mut rng = tepics_util::SplitMix64::new(seed);
    let mut v: Vec<f64> = (0..a.cols()).map(|_| rng.next_gaussian()).collect();
    let mut y = vec![0.0; a.rows()];
    let mut norm = 0.0;
    for _ in 0..iters.max(1) {
        let n = norm2(&v);
        if n == 0.0 {
            return 0.0;
        }
        scale(&mut v, 1.0 / n);
        a.apply(&v, &mut y);
        a.apply_adjoint(&y, &mut v);
        norm = norm2(&v).sqrt(); // ‖AᵀA v‖ ≈ σ² ⇒ σ = sqrt
    }
    norm
}

/// Dot product (four-lane kernel, deterministic reduction order — see
/// [`tepics_util::simd`]).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    tepics_util::simd::dot4(a, b)
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` (four-lane kernel; exactly the scalar loop's bits).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    tepics_util::simd::axpy4(alpha, x, y);
}

/// `x *= alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// `out = a - b`.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Checks the adjoint identity `⟨Ax, y⟩ = ⟨x, Aᵀy⟩` on random vectors;
/// returns the maximum relative mismatch observed. Test helper shared by
/// every operator implementation in the workspace.
pub fn adjoint_mismatch<A: LinearOperator + ?Sized>(a: &A, trials: usize, seed: u64) -> f64 {
    let mut rng = tepics_util::SplitMix64::new(seed);
    let mut worst: f64 = 0.0;
    for _ in 0..trials {
        let x: Vec<f64> = (0..a.cols()).map(|_| rng.next_gaussian()).collect();
        let y: Vec<f64> = (0..a.rows()).map(|_| rng.next_gaussian()).collect();
        let ax = a.apply_vec(&x);
        let aty = a.apply_adjoint_vec(&y);
        let lhs = dot(&ax, &y);
        let rhs = dot(&x, &aty);
        let denom = lhs.abs().max(rhs.abs()).max(1e-12);
        worst = worst.max((lhs - rhs).abs() / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMatrix;

    #[test]
    fn vector_kernels() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, -5.0, 6.0];
        assert_eq!(dot(&a, &b), 12.0);
        assert!((norm2(&a) - 14.0f64.sqrt()).abs() < 1e-15);
        let mut y = b;
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [6.0, -1.0, 12.0]);
        let mut z = a;
        scale(&mut z, -1.0);
        assert_eq!(z, [-1.0, -2.0, -3.0]);
        assert_eq!(sub(&a, &b), vec![-3.0, 7.0, -3.0]);
    }

    #[test]
    fn power_iteration_matches_known_singular_value() {
        // Diagonal matrix: norm is the largest diagonal entry.
        let m = DenseMatrix::from_fn(4, 4, |r, c| if r == c { (r + 1) as f64 } else { 0.0 });
        let est = operator_norm_est(&m, 100, 3);
        assert!((est - 4.0).abs() < 1e-6, "estimate {est}");
    }

    #[test]
    fn power_iteration_on_rectangular_operator() {
        // A = [1 1; 0 0; 0 0] has singular value sqrt(2).
        let m = DenseMatrix::from_fn(3, 2, |r, _| if r == 0 { 1.0 } else { 0.0 });
        let est = operator_norm_est(&m, 100, 5);
        assert!((est - 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn column_extraction_matches_matrix() {
        let m = DenseMatrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        let col2 = m.column(2);
        assert_eq!(col2, vec![2.0, 12.0, 22.0]);
    }

    #[test]
    fn adjoint_mismatch_is_zero_for_dense() {
        let m = DenseMatrix::from_fn(5, 7, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
        assert!(adjoint_mismatch(&m, 10, 1) < 1e-12);
    }
}
