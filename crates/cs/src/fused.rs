//! Fused `ΦᵀΨᵀ` / `ΨΦ` streaming kernels.
//!
//! The composed operator `A = Φ ∘ Ψ` is applied hundreds of times per
//! decode, and the classic two-pass evaluation round-trips an n-pixel
//! intermediate through memory on every call: Φᵀ scatters the whole
//! image, then Ψᵀ reads it all back. This module fuses the two passes
//! *by row blocks*: the measurement operator exposes a streaming
//! protocol that produces (adjoint) or consumes (forward) the pixel
//! image a block of rows at a time, and the dictionary exposes its
//! separable row pass so each block is transformed while it is still
//! L1-resident. Only the final column pass touches the full buffer.
//!
//! Three pieces cooperate:
//!
//! * [`RowStreamedOperator`] — a measurement Φ whose adjoint can emit
//!   the image row-block by row-block after a one-time `begin` pass
//!   (and whose forward application can consume row blocks the same
//!   way). [`crate::XorMeasurement`] implements it with its subset-sum
//!   tables hoisted into the `begin` stage.
//! * [`RowStagedDictionary`] — a dictionary Ψ whose analysis/synthesis
//!   splits into an independent per-row pass plus a whole-buffer
//!   finish/begin pass (separable transforms: DCT, Haar, identity).
//!   [`StagedDictionary`] wraps one with an optional pinned atom so
//!   [`crate::dictionary::ZeroMeanDictionary`] composes transparently.
//! * [`fused_adjoint`] / [`fused_apply`] — the drivers that tile the
//!   two protocols together over [`fused_block_rows`]-sized blocks.
//!
//! # Numeric contract
//!
//! The fused adjoint performs *the same floating-point operations in
//! the same order* as the two-pass reference for the dictionaries in
//! this crate (the row/column passes are shared code), so its results
//! are bit-identical to the unfused path. The fused forward pass
//! reorders the separable synthesis (columns before rows — required so
//! rows finalize blockwise); separability makes that exact in real
//! arithmetic and equal to ≤1e-10 relative in floats, which the
//! property tests pin down across geometries, dictionaries, and
//! solvers. Every kernel is deterministic — no thread-count, warmth, or
//! call-site dependence — so warm≡cold and batch bit-identity are
//! preserved.

use crate::dictionary::Dictionary;
use crate::op::LinearOperator;

/// Reusable buffers for the streaming measurement kernels: the adjoint's
/// per-group subset-sum tables and broadcast vectors, and the forward
/// pass's column sums and per-row tables. Grows on first use; reused
/// (and donated across solves via
/// [`ComposedScratch`](crate::operator::ComposedScratch)) afterwards.
#[derive(Debug, Clone, Default)]
pub struct FusedScratch {
    /// Adjoint: one 256-entry `−2·subset-sum` table per *active*
    /// measurement group, stored densely in activation order.
    pub(crate) tables: Vec<f64>,
    /// Adjoint: indices of the measurement groups with any nonzero `y`.
    pub(crate) active: Vec<u32>,
    /// Adjoint: per-array-row broadcast sums `P_i`.
    pub(crate) p: Vec<f64>,
    /// Adjoint: per-array-column broadcast sums `Q_j`.
    pub(crate) q: Vec<f64>,
    /// Forward: image column sums, accumulated across row blocks.
    pub(crate) colsums: Vec<f64>,
    /// Forward: subset-sum tables of the current image row.
    pub(crate) row_tables: Vec<f64>,
}

impl FusedScratch {
    /// An empty scratch; buffers grow to the operator's size on first
    /// use. `const` so it can seed a `thread_local!`.
    #[must_use]
    pub const fn new() -> Self {
        FusedScratch {
            tables: Vec::new(),
            active: Vec::new(),
            p: Vec::new(),
            q: Vec::new(),
            colsums: Vec::new(),
            row_tables: Vec::new(),
        }
    }
}

/// A measurement operator over a 2-D pixel grid whose forward and
/// adjoint applications stream the image by blocks of whole rows.
///
/// The protocol is `begin → block* (→ finish)`: `adjoint_begin` hoists
/// everything that depends only on `y` (subset-sum tables, broadcast
/// vectors), after which `adjoint_block` emits any row range of the
/// adjoint image independently; `apply_begin`/`apply_block`/
/// `apply_finish` mirror it for the forward direction, accumulating
/// into `y` as pixel rows arrive. Calling the blocks in ascending,
/// non-overlapping order over the full row range must reproduce
/// [`LinearOperator::apply_adjoint`] / [`LinearOperator::apply`]
/// bit-for-bit — implementations route both entry points through the
/// same kernels.
pub trait RowStreamedOperator: LinearOperator {
    /// Pixel-grid height M (`rows of the image`, not measurements).
    fn image_rows(&self) -> usize;

    /// Pixel-grid width N.
    fn image_cols(&self) -> usize;

    /// Precomputes the `y`-dependent state for [`RowStreamedOperator::adjoint_block`].
    fn adjoint_begin(&self, y: &[f64], scratch: &mut FusedScratch);

    /// Writes adjoint-image rows `i0..i1` (row-major, `(i1−i0)×N`) into
    /// `block`. Requires a prior [`RowStreamedOperator::adjoint_begin`]
    /// with the same `y`.
    fn adjoint_block(&self, i0: usize, i1: usize, block: &mut [f64], scratch: &FusedScratch);

    /// Zeroes `y` and resets the forward accumulators.
    fn apply_begin(&self, y: &mut [f64], scratch: &mut FusedScratch);

    /// Consumes pixel rows `i0..i1`, accumulating their contribution
    /// into `y`.
    fn apply_block(
        &self,
        i0: usize,
        i1: usize,
        block: &[f64],
        y: &mut [f64],
        scratch: &mut FusedScratch,
    );

    /// Adds the deferred (whole-image) terms after the last block.
    fn apply_finish(&self, y: &mut [f64], scratch: &mut FusedScratch);
}

/// A dictionary whose separable transform splits into an independent
/// per-row pass and a whole-buffer pass, so the row pass can run on
/// cache-hot blocks inside the fused drivers.
///
/// Analysis runs `analyze_rows` on each block then `analyze_finish` on
/// the full buffer; synthesis runs `synthesize_begin` on the full
/// coefficient buffer then `synthesize_rows` on each block. Composing
/// the staged calls over the full buffer must reproduce
/// [`Dictionary::analyze`] bit-for-bit and [`Dictionary::synthesize`]
/// to ≤1e-10 relative (synthesis swaps the separable pass order).
pub trait RowStagedDictionary: Dictionary {
    /// `true` if this dictionary's coefficient/pixel buffers are laid
    /// out on a `width`×`height` row-major grid compatible with the
    /// streaming operator's.
    fn accepts_grid(&self, width: usize, height: usize) -> bool;

    /// In-place analysis row pass over a block of whole rows.
    fn analyze_rows(&self, rows: &mut [f64], scratch: &mut Vec<f64>);

    /// In-place analysis finish (column pass and deeper levels) over
    /// the full buffer.
    fn analyze_finish(&self, buf: &mut [f64], scratch: &mut Vec<f64>);

    /// In-place synthesis begin (column pass and deeper levels) over
    /// the full coefficient buffer.
    fn synthesize_begin(&self, coeffs: &mut [f64], scratch: &mut Vec<f64>);

    /// In-place synthesis row pass over a block of whole rows.
    fn synthesize_rows(&self, rows: &mut [f64], scratch: &mut Vec<f64>);
}

/// A [`RowStagedDictionary`] together with an optional pinned atom,
/// letting [`crate::dictionary::ZeroMeanDictionary`] expose its inner
/// transform's staging while keeping the pin semantics (zero the pinned
/// coefficient before synthesis, after analysis).
#[derive(Clone, Copy)]
pub struct StagedDictionary<'a> {
    inner: &'a dyn RowStagedDictionary,
    pinned: Option<usize>,
}

impl std::fmt::Debug for StagedDictionary<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedDictionary")
            .field("pinned", &self.pinned)
            .finish_non_exhaustive()
    }
}

impl<'a> StagedDictionary<'a> {
    /// Wraps a staged dictionary with no pinned atom.
    pub fn new(inner: &'a dyn RowStagedDictionary) -> Self {
        StagedDictionary {
            inner,
            pinned: None,
        }
    }

    /// Adds a pinned atom. Returns `None` if one is already pinned
    /// (nested zero-mean wrappers fall back to the two-pass path).
    #[must_use]
    pub fn with_pin(mut self, atom: usize) -> Option<Self> {
        if self.pinned.is_some() {
            return None;
        }
        self.pinned = Some(atom);
        Some(self)
    }

    /// See [`RowStagedDictionary::accepts_grid`].
    pub fn accepts_grid(&self, width: usize, height: usize) -> bool {
        self.inner.accepts_grid(width, height)
    }

    /// See [`RowStagedDictionary::analyze_rows`].
    // tidy:alloc-free
    pub fn analyze_rows(&self, rows: &mut [f64], scratch: &mut Vec<f64>) {
        self.inner.analyze_rows(rows, scratch);
    }

    /// [`RowStagedDictionary::analyze_finish`], then the pin.
    // tidy:alloc-free
    pub fn analyze_finish(&self, buf: &mut [f64], scratch: &mut Vec<f64>) {
        self.inner.analyze_finish(buf, scratch);
        if let Some(pin) = self.pinned {
            buf[pin] = 0.0;
        }
    }

    /// The pin, then [`RowStagedDictionary::synthesize_begin`].
    // tidy:alloc-free
    pub fn synthesize_begin(&self, coeffs: &mut [f64], scratch: &mut Vec<f64>) {
        if let Some(pin) = self.pinned {
            coeffs[pin] = 0.0;
        }
        self.inner.synthesize_begin(coeffs, scratch);
    }

    /// See [`RowStagedDictionary::synthesize_rows`].
    // tidy:alloc-free
    pub fn synthesize_rows(&self, rows: &mut [f64], scratch: &mut Vec<f64>) {
        self.inner.synthesize_rows(rows, scratch);
    }
}

/// Rows per streaming block: targets ~16 KiB of f64 so the scatter
/// target plus the dictionary row pass stay L1-resident. Pure function
/// of the geometry (never of load or thread count), so block boundaries
/// — and therefore results — are deterministic.
pub fn fused_block_rows(rows: usize, cols: usize) -> usize {
    (2048 / cols.max(1)).clamp(1, rows.max(1))
}

/// Fused composed adjoint `α = Ψᵀ Φᵀ y`: Φᵀ emits each row block
/// directly into the coefficient buffer, the dictionary row pass
/// transforms it while cache-hot, and a single column pass finishes —
/// the intermediate pixel image never exists as a separate buffer.
///
/// # Panics
///
/// Panics if `alpha.len()` differs from the pixel count or `y.len()`
/// from the measurement count.
// tidy:alloc-free
pub fn fused_adjoint(
    phi: &dyn RowStreamedOperator,
    psi: &StagedDictionary<'_>,
    y: &[f64],
    alpha: &mut [f64],
    fs: &mut FusedScratch,
    dict_scratch: &mut Vec<f64>,
) {
    let (m, n) = (phi.image_rows(), phi.image_cols());
    assert_eq!(alpha.len(), m * n, "coefficient length mismatch");
    phi.adjoint_begin(y, fs);
    let step = fused_block_rows(m, n);
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + step).min(m);
        let block = &mut alpha[i0 * n..i1 * n];
        phi.adjoint_block(i0, i1, block, fs);
        psi.analyze_rows(block, dict_scratch);
        i0 = i1;
    }
    psi.analyze_finish(alpha, dict_scratch);
}

/// Fused composed forward `y = Φ Ψ α`: synthesis runs its whole-buffer
/// pass first (columns), then each row block is finalized and
/// immediately consumed by Φ's streaming accumulation while still
/// cache-hot.
///
/// `pixels` is the working buffer for the in-place synthesis (donated
/// scratch; resized on first use).
///
/// # Panics
///
/// Panics if `alpha.len()` differs from the pixel count or `y.len()`
/// from the measurement count.
// tidy:alloc-free
pub fn fused_apply(
    phi: &dyn RowStreamedOperator,
    psi: &StagedDictionary<'_>,
    alpha: &[f64],
    y: &mut [f64],
    pixels: &mut Vec<f64>,
    fs: &mut FusedScratch,
    dict_scratch: &mut Vec<f64>,
) {
    let (m, n) = (phi.image_rows(), phi.image_cols());
    assert_eq!(alpha.len(), m * n, "coefficient length mismatch");
    pixels.resize(m * n, 0.0);
    pixels.copy_from_slice(alpha);
    psi.synthesize_begin(pixels, dict_scratch);
    phi.apply_begin(y, fs);
    let step = fused_block_rows(m, n);
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + step).min(m);
        let block = &mut pixels[i0 * n..i1 * n];
        psi.synthesize_rows(block, dict_scratch);
        phi.apply_block(i0, i1, block, y, fs);
        i0 = i1;
    }
    phi.apply_finish(y, fs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rows_is_deterministic_and_bounded() {
        for &(m, n) in &[(1usize, 1usize), (8, 8), (64, 64), (128, 128), (7, 9)] {
            let b = fused_block_rows(m, n);
            assert!(b >= 1 && b <= m, "{m}×{n} gave block {b}");
            assert_eq!(b, fused_block_rows(m, n));
        }
        // ~16 KiB target: 64-wide images stream 32 rows at a time.
        assert_eq!(fused_block_rows(64, 64), 32);
        assert_eq!(fused_block_rows(128, 128), 16);
    }

    #[test]
    fn staged_wrapper_rejects_double_pin() {
        let dict = crate::dictionary::Dct2dDictionary::new(8, 8);
        let staged = StagedDictionary::new(&dict);
        let pinned = staged.with_pin(0).expect("first pin accepted");
        assert!(pinned.with_pin(1).is_none(), "second pin must refuse");
    }
}
