//! Operator composition and views.
//!
//! Recovery solves `min ‖α‖₁ s.t. Φ Ψ α ≈ y`. [`ComposedOperator`] is
//! that product without materialization; [`SignedMeasurementOp`] is the
//! ±1 (`B = 2Φ − 1`) view of a binary measurement, used by the matrix
//! quality experiments where RIP analysis conventionally assumes
//! zero-mean entries.

use std::cell::RefCell;
use std::sync::Arc;

use crate::colview::ColumnMatrix;
use crate::dictionary::Dictionary;
use crate::fused::{self, FusedScratch};
use crate::op::LinearOperator;

/// Reusable intermediate buffers of a [`ComposedOperator`]: the pixel
/// vector between Ψ and Φ, the dictionary's own transform scratch, a
/// unit coefficient vector for column extraction, and the streaming
/// measurement kernels' [`FusedScratch`].
///
/// Public so callers that build one composed operator per solve (the
/// decoder) can donate the buffers across solves via
/// [`ComposedOperator::with_scratch`]/[`ComposedOperator::into_scratch`]
/// — warm decodes then perform no per-solve allocation at all.
#[derive(Debug, Clone, Default)]
pub struct ComposedScratch {
    pixels: Vec<f64>,
    dict: Vec<f64>,
    unit: Vec<f64>,
    fused: FusedScratch,
}

impl ComposedScratch {
    /// Empty buffers; they grow to the operator's sizes on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The pixel-domain buffer and the dictionary transform scratch —
    /// for callers that reuse the donation between solves (e.g. the
    /// decoder's final synthesis).
    pub fn pixels_and_dict(&mut self) -> (&mut Vec<f64>, &mut Vec<f64>) {
        (&mut self.pixels, &mut self.dict)
    }
}

/// The product `A = Φ ∘ Ψ` of a measurement operator and a dictionary.
///
/// Applications run through internal scratch buffers that grow on first
/// use and are reused afterwards, so the solver loop performs no
/// per-iteration allocation. The buffers make this type `!Sync`; it is
/// built per solve (each batch worker composes its own view over the
/// shared cached operator), never shared across threads.
///
/// # Examples
///
/// ```
/// use tepics_cs::measurement::DenseBinaryMeasurement;
/// use tepics_cs::{ComposedOperator, Dct2dDictionary, LinearOperator};
///
/// let phi = DenseBinaryMeasurement::bernoulli(10, 64, 1, 0.5);
/// let psi = Dct2dDictionary::new(8, 8);
/// let a = ComposedOperator::new(&phi, &psi);
/// assert_eq!(a.rows(), 10);
/// assert_eq!(a.cols(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct ComposedOperator<'a, M: ?Sized, D: ?Sized> {
    phi: &'a M,
    psi: &'a D,
    scratch: RefCell<ComposedScratch>,
    /// Optional materialized `Φ·Ψ` columns (see [`ColumnMatrix`]).
    columns: Option<Arc<ColumnMatrix>>,
}

impl<'a, M, D> ComposedOperator<'a, M, D>
where
    M: LinearOperator + ?Sized,
    D: Dictionary + ?Sized,
{
    /// Composes a measurement with a dictionary.
    ///
    /// # Panics
    ///
    /// Panics if `phi.cols() != psi.dim()`.
    pub fn new(phi: &'a M, psi: &'a D) -> Self {
        assert_eq!(
            phi.cols(),
            psi.dim(),
            "measurement expects {} pixels, dictionary synthesizes {}",
            phi.cols(),
            psi.dim()
        );
        ComposedOperator {
            phi,
            psi,
            scratch: RefCell::new(ComposedScratch::default()),
            columns: None,
        }
    }

    /// Attaches a materialized column view (typically built once by
    /// [`ColumnMatrix::from_operator`] and memoized by a cache).
    /// Afterwards [`LinearOperator::column_view`] returns it and
    /// [`LinearOperator::column_into`] serves columns by copy instead of
    /// by synthesis — consumers on the column path (greedy solvers,
    /// restricted least squares) pick it up automatically.
    ///
    /// `apply`/`apply_adjoint` are unaffected: they keep the matrix-free
    /// fast paths, so attaching a view never changes forward/adjoint
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if the view's shape does not match this operator.
    #[must_use]
    pub fn with_column_view(mut self, view: Arc<ColumnMatrix>) -> Self {
        assert_eq!(view.rows(), self.phi.rows(), "view row mismatch");
        assert_eq!(view.cols(), self.psi.atoms(), "view column mismatch");
        self.columns = Some(view);
        self
    }

    /// Seeds this operator with donated scratch buffers (typically taken
    /// from a solver workspace), so a freshly built composition starts
    /// warm instead of growing its buffers again.
    #[must_use]
    pub fn with_scratch(self, scratch: ComposedScratch) -> Self {
        *self.scratch.borrow_mut() = scratch;
        self
    }

    /// Returns the scratch buffers for donation to the next solve.
    pub fn into_scratch(self) -> ComposedScratch {
        self.scratch.into_inner()
    }

    /// The fused streaming pair for this composition, when the
    /// measurement streams rows, the dictionary stages rows, and the
    /// two agree on the pixel grid (see [`crate::fused`]).
    fn fused_pair(&self) -> Option<(&dyn fused::RowStreamedOperator, fused::StagedDictionary<'_>)> {
        if self.psi.dim() != self.psi.atoms() {
            return None;
        }
        let stream = self.phi.row_streamed()?;
        let staged = self.psi.row_staged()?;
        if !staged.accepts_grid(stream.image_cols(), stream.image_rows()) {
            return None;
        }
        Some((stream, staged))
    }
}

impl<'a, M, D> LinearOperator for ComposedOperator<'a, M, D>
where
    M: LinearOperator + ?Sized,
    D: Dictionary + ?Sized,
{
    fn rows(&self) -> usize {
        self.phi.rows()
    }

    fn cols(&self) -> usize {
        self.psi.atoms()
    }

    // tidy:alloc-free
    fn apply(&self, alpha: &[f64], y: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        let ComposedScratch {
            pixels,
            dict,
            fused: fs,
            ..
        } = &mut *scratch;
        if let Some((stream, staged)) = self.fused_pair() {
            fused::fused_apply(stream, &staged, alpha, y, pixels, fs, dict);
            return;
        }
        pixels.resize(self.psi.dim(), 0.0);
        self.psi.synthesize_with(alpha, pixels, dict);
        self.phi.apply(pixels, y);
    }

    // tidy:alloc-free
    fn apply_adjoint(&self, y: &[f64], alpha: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        let ComposedScratch {
            pixels,
            dict,
            fused: fs,
            ..
        } = &mut *scratch;
        if let Some((stream, staged)) = self.fused_pair() {
            fused::fused_adjoint(stream, &staged, y, alpha, fs, dict);
            return;
        }
        pixels.resize(self.psi.dim(), 0.0);
        self.phi.apply_adjoint(y, pixels);
        self.psi.analyze_with(pixels, alpha, dict);
    }

    fn column_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.cols(), "column {j} out of range");
        assert_eq!(out.len(), self.rows(), "output length mismatch");
        if let Some(view) = &self.columns {
            out.copy_from_slice(view.column(j));
            return;
        }
        let mut scratch = self.scratch.borrow_mut();
        let ComposedScratch {
            pixels, dict, unit, ..
        } = &mut *scratch;
        unit.clear();
        unit.resize(self.psi.atoms(), 0.0);
        unit[j] = 1.0;
        pixels.resize(self.psi.dim(), 0.0);
        self.psi.synthesize_with(unit, pixels, dict);
        self.phi.apply(pixels, out);
    }

    fn column_view(&self) -> Option<&ColumnMatrix> {
        self.columns.as_deref()
    }
}

/// The signed view `B = 2Φ − 1` of a binary measurement:
/// `B x = 2 Φ x − (Σ x) · 1`.
///
/// Computed matrix-free from the underlying 0/1 operator; the adjoint is
/// `Bᵀ y = 2 Φᵀ y − (Σ y) · 1`.
#[derive(Debug, Clone)]
pub struct SignedMeasurementOp<'a, M: ?Sized> {
    phi: &'a M,
}

impl<'a, M: LinearOperator + ?Sized> SignedMeasurementOp<'a, M> {
    /// Wraps a 0/1 measurement operator.
    pub fn new(phi: &'a M) -> Self {
        SignedMeasurementOp { phi }
    }
}

impl<'a, M: LinearOperator + ?Sized> LinearOperator for SignedMeasurementOp<'a, M> {
    fn rows(&self) -> usize {
        self.phi.rows()
    }

    fn cols(&self) -> usize {
        self.phi.cols()
    }

    // tidy:alloc-free
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.phi.apply(x, y);
        let sum: f64 = x.iter().sum();
        for v in y.iter_mut() {
            *v = 2.0 * *v - sum;
        }
    }

    // tidy:alloc-free
    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        self.phi.apply_adjoint(y, x);
        let sum: f64 = y.iter().sum();
        for v in x.iter_mut() {
            *v = 2.0 * *v - sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::{Dct2dDictionary, IdentityDictionary, ZeroMeanDictionary};
    use crate::measurement::{DenseBinaryMeasurement, SelectionMeasurement};
    use crate::op::{adjoint_mismatch, operator_norm_est};

    #[test]
    fn composed_equals_sequential_application() {
        let phi = DenseBinaryMeasurement::bernoulli(12, 64, 3, 0.5);
        let psi = Dct2dDictionary::new(8, 8);
        let a = ComposedOperator::new(&phi, &psi);
        let mut rng = tepics_util::SplitMix64::new(1);
        let alpha: Vec<f64> = (0..64).map(|_| rng.next_gaussian()).collect();
        let manual = phi.apply_vec(&psi.synthesize_vec(&alpha));
        assert_eq!(a.apply_vec(&alpha), manual);
        assert!(adjoint_mismatch(&a, 10, 2) < 1e-12);
    }

    #[test]
    fn signed_view_matches_explicit_pm1_matrix() {
        let phi = DenseBinaryMeasurement::bernoulli(6, 20, 9, 0.5);
        let signed = SignedMeasurementOp::new(&phi);
        let mut rng = tepics_util::SplitMix64::new(5);
        let x: Vec<f64> = (0..20).map(|_| rng.next_gaussian()).collect();
        let y = signed.apply_vec(&x);
        for (k, &yk) in y.iter().enumerate() {
            let mask = phi.mask(k);
            let expected: f64 = (0..20)
                .map(|i| if mask.get(i) { x[i] } else { -x[i] })
                .sum();
            assert!((yk - expected).abs() < 1e-10, "row {k}");
        }
        assert!(adjoint_mismatch(&signed, 10, 6) < 1e-12);
    }

    #[test]
    fn dc_exclusion_tames_operator_norm() {
        // The 0/1 measurement composed with a full dictionary has a huge
        // gain along DC; pinning DC brings the norm down to the ±1 scale.
        let phi = DenseBinaryMeasurement::bernoulli(64, 256, 4, 0.5);
        let psi_full = Dct2dDictionary::new(16, 16);
        let psi_zm = ZeroMeanDictionary::new(Dct2dDictionary::new(16, 16), 0);
        let full = operator_norm_est(&ComposedOperator::new(&phi, &psi_full), 60, 1);
        let zm = operator_norm_est(&ComposedOperator::new(&phi, &psi_zm), 60, 1);
        assert!(
            zm * 4.0 < full,
            "expected ≥4× norm reduction, got full={full:.1} zm={zm:.1}"
        );
    }

    #[test]
    fn identity_dictionary_composition_is_transparent() {
        let phi = DenseBinaryMeasurement::bernoulli(5, 30, 7, 0.5);
        let psi = IdentityDictionary::new(30);
        let a = ComposedOperator::new(&phi, &psi);
        let x = vec![1.0; 30];
        assert_eq!(a.apply_vec(&x), phi.apply_vec(&x));
    }

    #[test]
    #[should_panic(expected = "dictionary synthesizes")]
    fn dimension_mismatch_panics() {
        let phi = DenseBinaryMeasurement::bernoulli(5, 30, 7, 0.5);
        let psi = IdentityDictionary::new(31);
        ComposedOperator::new(&phi, &psi);
    }
}
