//! Measurement-matrix quality: mutual coherence and empirical RIP
//! constants.
//!
//! The paper requires Φ·Ψ to "hold the restricted isometry property".
//! For structured ensembles like the XOR/CA strategy no closed-form RIP
//! bound exists, so the `matrices` experiment measures proxies:
//!
//! * **mutual coherence** — the largest normalized inner product between
//!   distinct columns of `A = ΦΨ` (lower is better);
//! * **empirical RIP constant** `δ̂_k` — over random k-column
//!   submatrices, the worst deviation of the (column-normalized) Gram
//!   spectrum from 1.
//!
//! Both work on any [`LinearOperator`]; columns are materialized lazily.

use crate::eig::sym_eig_extremes;
use crate::mat::DenseMatrix;
use crate::op::{dot, norm2, LinearOperator};
use tepics_util::{RunningStats, SplitMix64};

/// Exact mutual coherence over all column pairs: `max_{i≠j} |⟨aᵢ,aⱼ⟩| /
/// (‖aᵢ‖‖aⱼ‖)`. O(cols² · rows) — use [`mutual_coherence_sampled`] for
/// large operators.
///
/// Zero columns are skipped.
///
/// # Panics
///
/// Panics if the operator has fewer than two columns.
pub fn mutual_coherence<A: LinearOperator + ?Sized>(a: &A) -> f64 {
    assert!(a.cols() >= 2, "coherence needs at least two columns");
    let cols: Vec<Vec<f64>> = (0..a.cols()).map(|j| a.column(j)).collect();
    let norms: Vec<f64> = cols.iter().map(|c| norm2(c)).collect();
    let mut worst = 0.0f64;
    for i in 0..cols.len() {
        if norms[i] == 0.0 {
            continue;
        }
        for j in i + 1..cols.len() {
            if norms[j] == 0.0 {
                continue;
            }
            let c = dot(&cols[i], &cols[j]).abs() / (norms[i] * norms[j]);
            worst = worst.max(c);
        }
    }
    worst
}

/// Sampled mutual coherence: examines `pairs` random column pairs.
/// Cheaper lower bound of [`mutual_coherence`] for large operators.
///
/// # Panics
///
/// Panics if the operator has fewer than two columns or `pairs == 0`.
pub fn mutual_coherence_sampled<A: LinearOperator + ?Sized>(a: &A, pairs: usize, seed: u64) -> f64 {
    assert!(a.cols() >= 2, "coherence needs at least two columns");
    assert!(pairs > 0, "need at least one pair");
    let mut rng = SplitMix64::new(seed);
    let mut worst = 0.0f64;
    for _ in 0..pairs {
        let i = rng.next_below(a.cols() as u64) as usize;
        let mut j = rng.next_below(a.cols() as u64) as usize;
        if i == j {
            j = (j + 1) % a.cols();
        }
        let ci = a.column(i);
        let cj = a.column(j);
        let ni = norm2(&ci);
        let nj = norm2(&cj);
        if ni == 0.0 || nj == 0.0 {
            continue;
        }
        worst = worst.max(dot(&ci, &cj).abs() / (ni * nj));
    }
    worst
}

/// Result of an empirical RIP probe.
#[derive(Debug, Clone, PartialEq)]
pub struct RipEstimate {
    /// Sparsity level probed.
    pub k: usize,
    /// Number of random supports examined.
    pub trials: usize,
    /// Worst observed `δ = max(λmax − 1, 1 − λmin)` over trials.
    pub delta_max: f64,
    /// Distribution of per-trial δ values.
    pub delta_stats: RunningStats,
    /// Fraction of trials whose submatrix was rank-deficient
    /// (λmin ≈ 0 — an immediate RIP failure).
    pub singular_fraction: f64,
}

/// Estimates the RIP constant `δ_k` of a column-normalized operator by
/// sampling random k-column submatrices and computing the extreme
/// eigenvalues of their Gram matrices.
///
/// This is a *lower* bound on the true δ_k (which maximizes over all
/// supports), but sampled identically across ensembles it is the
/// standard fair comparison.
///
/// # Panics
///
/// Panics if `k` is zero, exceeds the column count, or `trials == 0`.
pub fn rip_estimate<A: LinearOperator + ?Sized>(
    a: &A,
    k: usize,
    trials: usize,
    seed: u64,
) -> RipEstimate {
    assert!(k > 0 && k <= a.cols(), "invalid sparsity {k}");
    assert!(trials > 0, "need at least one trial");
    let mut rng = SplitMix64::new(seed);
    let mut delta_stats = RunningStats::new();
    let mut delta_max = 0.0f64;
    let mut singular = 0usize;
    for _ in 0..trials {
        // Random support without replacement (partial Fisher–Yates).
        let mut idx: Vec<usize> = (0..a.cols()).collect();
        for i in 0..k {
            let j = i + rng.next_below((idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        let support = &idx[..k];
        // Materialize normalized columns.
        let mut cols: Vec<Vec<f64>> = Vec::with_capacity(k);
        for &j in support {
            let mut c = a.column(j);
            let n = norm2(&c);
            if n > 0.0 {
                for v in &mut c {
                    *v /= n;
                }
            }
            cols.push(c);
        }
        // Gram of the submatrix.
        let gram = DenseMatrix::from_fn(k, k, |r, c| dot(&cols[r], &cols[c]));
        let (lo, hi) = sym_eig_extremes(&gram);
        if lo < 1e-9 {
            singular += 1;
        }
        let delta = (hi - 1.0).max(1.0 - lo);
        delta_max = delta_max.max(delta);
        delta_stats.push(delta);
    }
    RipEstimate {
        k,
        trials,
        delta_max,
        delta_stats,
        singular_fraction: singular as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::{Dct2dDictionary, ZeroMeanDictionary};
    use crate::measurement::DenseBinaryMeasurement;
    use crate::operator::{ComposedOperator, SignedMeasurementOp};

    #[test]
    fn orthonormal_columns_have_zero_coherence() {
        let id = DenseMatrix::identity(6);
        assert!(mutual_coherence(&id) < 1e-12);
    }

    #[test]
    fn duplicated_column_has_full_coherence() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]]);
        assert!((mutual_coherence(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_coherence_lower_bounds_exact() {
        let phi = DenseBinaryMeasurement::bernoulli(20, 40, 3, 0.5);
        let signed = SignedMeasurementOp::new(&phi);
        let exact = mutual_coherence(&signed);
        let sampled = mutual_coherence_sampled(&signed, 200, 7);
        assert!(sampled <= exact + 1e-12);
        assert!(sampled > 0.0);
    }

    #[test]
    fn identity_operator_has_zero_rip_delta() {
        let id = DenseMatrix::identity(12);
        let est = rip_estimate(&id, 4, 10, 1);
        assert!(est.delta_max < 1e-9);
        assert_eq!(est.singular_fraction, 0.0);
    }

    #[test]
    fn rip_delta_grows_with_sparsity() {
        let phi = DenseBinaryMeasurement::bernoulli(32, 128, 5, 0.5);
        let signed = SignedMeasurementOp::new(&phi);
        let d2 = rip_estimate(&signed, 2, 30, 2).delta_stats.mean();
        let d16 = rip_estimate(&signed, 16, 30, 2).delta_stats.mean();
        assert!(d16 > d2, "δ̂ should grow with k: δ̂₂={d2:.3} vs δ̂₁₆={d16:.3}");
    }

    #[test]
    fn undersampled_supports_are_singular() {
        // k > rows forces rank deficiency in every trial.
        let phi = DenseBinaryMeasurement::bernoulli(4, 32, 6, 0.5);
        let signed = SignedMeasurementOp::new(&phi);
        let est = rip_estimate(&signed, 8, 5, 3);
        assert_eq!(est.singular_fraction, 1.0);
        assert!(est.delta_max >= 1.0 - 1e-9);
    }

    #[test]
    fn signed_bernoulli_beats_raw_binary_composition() {
        // The 0/1 composition (with DC atom present) has terrible
        // coherence; the DC-pinned version is far better. This is the
        // quantitative justification for the mean-split decoder.
        let phi = DenseBinaryMeasurement::bernoulli(24, 64, 9, 0.5);
        let psi = Dct2dDictionary::new(8, 8);
        let psi_zm = ZeroMeanDictionary::new(Dct2dDictionary::new(8, 8), 0);
        let raw = ComposedOperator::new(&phi, &psi);
        let zm = ComposedOperator::new(&phi, &psi_zm);
        // Compare coherence over non-DC columns only: sample pairs.
        let c_raw = mutual_coherence(&raw);
        let _ = c_raw; // raw includes the DC column: near 1 by construction
        let c_zm = {
            // Exclude the pinned (all-zero) column automatically: zero
            // columns are skipped by mutual_coherence.
            mutual_coherence(&zm)
        };
        assert!(c_zm < 0.9, "zero-mean coherence {c_zm} unexpectedly high");
    }
}
