//! Cholesky factorization, including the growing variant for greedy
//! pursuit.
//!
//! OMP and CoSaMP repeatedly solve least-squares systems whose support
//! grows by one atom per iteration; [`GrowingCholesky`] updates the
//! factorization in O(k²) per added atom instead of refactoring in
//! O(k³), which is the standard trick that makes OMP practical.

use crate::mat::DenseMatrix;
use std::fmt;

/// Error returned when a matrix is not (numerically) symmetric positive
/// definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSpdError {
    /// Index of the pivot that failed.
    pub pivot: usize,
}

impl fmt::Display for NotSpdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotSpdError {}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
///
/// # Examples
///
/// ```
/// use tepics_cs::chol::Cholesky;
/// use tepics_cs::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let chol = Cholesky::factor(&a).unwrap();
/// let x = chol.solve(&[8.0, 7.0]);
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    n: usize,
    /// Row-major lower triangle (full n×n storage for simplicity).
    l: Vec<f64>,
}

impl Cholesky {
    /// Factors a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NotSpdError`] if a pivot is not strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn factor(a: &DenseMatrix) -> Result<Cholesky, NotSpdError> {
        assert_eq!(a.row_count(), a.col_count(), "matrix must be square");
        let n = a.row_count();
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NotSpdError { pivot: i });
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` via forward/backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        // Forward: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &zk) in z.iter().enumerate().take(i) {
                sum -= self.l[i * n + k] * zk;
            }
            z[i] = sum / self.l[i * n + i];
        }
        // Backward: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[k * n + i] * xk;
            }
            x[i] = sum / self.l[i * n + i];
        }
        x
    }
}

/// Incrementally grown Cholesky factorization of a Gram matrix.
///
/// Greedy pursuit adds one atom per iteration; [`GrowingCholesky::push`]
/// extends `L` with the new atom's Gram column in O(k²).
///
/// # Examples
///
/// ```
/// use tepics_cs::chol::GrowingCholesky;
///
/// let mut g = GrowingCholesky::with_capacity(2);
/// g.push(&[], 4.0).unwrap();            // A = [4]
/// g.push(&[2.0], 3.0).unwrap();         // A = [[4,2],[2,3]]
/// let x = g.solve(&[8.0, 7.0]);
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GrowingCholesky {
    cap: usize,
    k: usize,
    /// Row-major `cap × cap` lower-triangular storage.
    l: Vec<f64>,
}

impl GrowingCholesky {
    /// Creates an empty factorization that can grow to `cap` atoms.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be positive");
        GrowingCholesky {
            cap,
            k: 0,
            l: vec![0.0; cap * cap],
        }
    }

    /// Current dimension.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// Empties the factorization and re-targets it at `cap` atoms,
    /// reusing the existing storage (no reallocation when `cap` fits the
    /// current capacity). Greedy solvers keep one instance in their
    /// workspace and reset it per solve.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn reset(&mut self, cap: usize) {
        assert!(cap > 0, "capacity must be positive");
        self.k = 0;
        self.cap = cap;
        self.l.clear();
        self.l.resize(cap * cap, 0.0);
    }

    /// Appends a new atom: `cross` holds its Gram inner products against
    /// the existing `dim()` atoms, `diag` its squared norm.
    ///
    /// # Errors
    ///
    /// Returns [`NotSpdError`] when the new atom is (numerically)
    /// linearly dependent on the current set; the factorization is left
    /// unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `cross.len() != dim()` or capacity is exhausted.
    pub fn push(&mut self, cross: &[f64], diag: f64) -> Result<(), NotSpdError> {
        assert_eq!(cross.len(), self.k, "cross-Gram length mismatch");
        assert!(self.k < self.cap, "capacity exhausted");
        let n = self.cap;
        let k = self.k;
        // Solve L w = cross for the new row, writing w directly into the
        // row-k slots (they are overwritten wholesale on every push at
        // this dimension, so a failed push leaves no observable state).
        let (head, tail) = self.l.split_at_mut(k * n);
        let w = &mut tail[..k + 1];
        for i in 0..k {
            let mut sum = cross[i];
            for j in 0..i {
                sum -= head[i * n + j] * w[j];
            }
            w[i] = sum / head[i * n + i];
        }
        let rem = diag - w[..k].iter().map(|v| v * v).sum::<f64>();
        if rem <= 1e-12 {
            return Err(NotSpdError { pivot: k });
        }
        w[k] = rem.sqrt();
        self.k += 1;
        Ok(())
    }

    /// Solves the current `k × k` system `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()` or the factorization is empty.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        let mut z = Vec::new();
        self.solve_into(b, &mut x, &mut z);
        x
    }

    /// [`GrowingCholesky::solve`] into caller-owned buffers (`x` gets
    /// the solution, `z` is forward-substitution scratch); bit-identical
    /// to the allocating variant and allocation-free once the buffers
    /// are warm.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()` or the factorization is empty.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>, z: &mut Vec<f64>) {
        assert!(self.k > 0, "empty factorization");
        assert_eq!(b.len(), self.k, "rhs length mismatch");
        let n = self.cap;
        let k = self.k;
        z.clear();
        z.resize(k, 0.0);
        for i in 0..k {
            let mut sum = b[i];
            for (j, &zj) in z.iter().enumerate().take(i) {
                sum -= self.l[i * n + j] * zj;
            }
            z[i] = sum / self.l[i * n + i];
        }
        x.clear();
        x.resize(k, 0.0);
        for i in (0..k).rev() {
            let mut sum = z[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[j * n + i] * xj;
            }
            x[i] = sum / self.l[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_spd(n: usize, seed: u64) -> DenseMatrix {
        let mut rng = tepics_util::SplitMix64::new(seed);
        let b = DenseMatrix::from_fn(n + 2, n, |_, _| rng.next_gaussian());
        let mut g = b.gram();
        for i in 0..n {
            g.set(i, i, g.get(i, i) + 0.5); // ensure well-conditioned
        }
        g
    }

    #[test]
    fn factor_solve_roundtrip() {
        use crate::op::LinearOperator;
        for n in [1usize, 2, 5, 12] {
            let a = random_spd(n, n as u64);
            let chol = Cholesky::factor(&a).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 - 1.5) * 0.3).collect();
            let b = a.apply_vec(&x_true);
            let x = chol.solve(&b);
            for (xs, xt) in x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn growing_matches_batch() {
        use crate::op::LinearOperator;
        let n = 8;
        let a = random_spd(n, 77);
        let batch = Cholesky::factor(&a).unwrap();
        let mut grow = GrowingCholesky::with_capacity(n);
        for k in 0..n {
            let cross: Vec<f64> = (0..k).map(|j| a.get(k, j)).collect();
            grow.push(&cross, a.get(k, k)).unwrap();
        }
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let b = a.apply_vec(&x_true);
        let xb = batch.solve(&b);
        let xg = grow.solve(&b);
        for (p, q) in xb.iter().zip(&xg) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn growing_rejects_dependent_atom() {
        let mut g = GrowingCholesky::with_capacity(3);
        g.push(&[], 1.0).unwrap();
        // Second atom identical to the first: gram [[1,1],[1,1]].
        let err = g.push(&[1.0], 1.0).unwrap_err();
        assert_eq!(err.pivot, 1);
        // Factorization still usable at dimension 1.
        assert_eq!(g.dim(), 1);
        let x = g.solve(&[2.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_growing_solve_uses_leading_block() {
        let a = random_spd(6, 5);
        let mut grow = GrowingCholesky::with_capacity(6);
        for k in 0..3 {
            let cross: Vec<f64> = (0..k).map(|j| a.get(k, j)).collect();
            grow.push(&cross, a.get(k, k)).unwrap();
        }
        // Solve against the leading 3×3 block.
        let lead = DenseMatrix::from_fn(3, 3, |r, c| a.get(r, c));
        let batch = Cholesky::factor(&lead).unwrap();
        let b = [1.0, -2.0, 0.5];
        let xg = grow.solve(&b);
        let xb = batch.solve(&b);
        for (p, q) in xg.iter().zip(&xb) {
            assert!((p - q).abs() < 1e-10);
        }
    }
}
