//! Symmetric eigenvalues via cyclic Jacobi.
//!
//! RIP-constant estimation needs the extreme eigenvalues of many small
//! Gram matrices `A_Sᵀ A_S` (k ≤ 64). The cyclic Jacobi method is a
//! dozen lines, unconditionally stable for symmetric input, and exact
//! enough (off-diagonal norm driven below 1e-12) that no LAPACK
//! dependency is warranted.

use crate::mat::DenseMatrix;

/// Computes all eigenvalues of a symmetric matrix by cyclic Jacobi
/// rotations. Returns them in ascending order.
///
/// # Panics
///
/// Panics if the matrix is not square. Symmetry is the caller's
/// responsibility (the strictly lower triangle is ignored).
///
/// # Examples
///
/// ```
/// use tepics_cs::{eig::sym_eigenvalues, DenseMatrix};
///
/// let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let ev = sym_eigenvalues(&a);
/// assert!((ev[0] - 1.0).abs() < 1e-10);
/// assert!((ev[1] - 3.0).abs() < 1e-10);
/// ```
pub fn sym_eigenvalues(a: &DenseMatrix) -> Vec<f64> {
    assert_eq!(a.row_count(), a.col_count(), "matrix must be square");
    let n = a.row_count();
    if n == 1 {
        return vec![a.get(0, 0)];
    }
    // Work on an upper-symmetrized copy.
    let mut m = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let v = if j >= i { a.get(i, j) } else { a.get(j, i) };
            m[i * n + j] = v;
        }
    }
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if off.sqrt() < 1e-13 {
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation J(p,q,θ) on both sides.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
            }
        }
    }
    let mut ev: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    ev.sort_by(f64::total_cmp);
    ev
}

/// Extreme eigenvalues `(λ_min, λ_max)` of a symmetric matrix.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn sym_eig_extremes(a: &DenseMatrix) -> (f64, f64) {
    let ev = sym_eigenvalues(a);
    // tidy:allow(panic: documented panic — a square matrix yields one eigenvalue per row)
    (ev[0], *ev.last().expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = DenseMatrix::from_fn(4, 4, |r, c| if r == c { (r + 1) as f64 } else { 0.0 });
        let ev = sym_eigenvalues(&a);
        assert_eq!(ev.len(), 4);
        for (i, &v) in ev.iter().enumerate() {
            assert!((v - (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn known_2x2() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let ev = sym_eigenvalues(&a);
        assert!((ev[0] + 1.0).abs() < 1e-12);
        assert!((ev[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_and_frobenius_are_preserved() {
        let mut rng = tepics_util::SplitMix64::new(4);
        let b = DenseMatrix::from_fn(10, 10, |_, _| rng.next_gaussian());
        let g = b.gram(); // symmetric PSD
        let ev = sym_eigenvalues(&g);
        let trace: f64 = (0..10).map(|i| g.get(i, i)).sum();
        assert!((ev.iter().sum::<f64>() - trace).abs() < 1e-8);
        let frob2: f64 = g.as_slice().iter().map(|v| v * v).sum();
        let ev2: f64 = ev.iter().map(|v| v * v).sum();
        assert!((frob2 - ev2).abs() / frob2 < 1e-10);
        // PSD: all eigenvalues non-negative.
        assert!(ev[0] > -1e-10);
    }

    #[test]
    fn extremes_of_gram_bound_rayleigh_quotients() {
        use crate::op::LinearOperator;
        let mut rng = tepics_util::SplitMix64::new(11);
        let b = DenseMatrix::from_fn(20, 6, |_, _| rng.next_gaussian());
        let g = b.gram();
        let (lo, hi) = sym_eig_extremes(&g);
        for _ in 0..50 {
            let x: Vec<f64> = (0..6).map(|_| rng.next_gaussian()).collect();
            let gx = g.apply_vec(&x);
            let rq = crate::op::dot(&x, &gx) / crate::op::dot(&x, &x);
            assert!(
                rq >= lo - 1e-8 && rq <= hi + 1e-8,
                "Rayleigh {rq} outside [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn one_by_one_matrix() {
        let a = DenseMatrix::from_rows(&[vec![5.0]]);
        assert_eq!(sym_eigenvalues(&a), vec![5.0]);
    }
}
