//! Sparsifying dictionaries Ψ.
//!
//! The decoder models the image as `x = Ψ α` with sparse `α`. All
//! dictionaries here are orthonormal (`analyze` is the exact adjoint and
//! inverse of `synthesize`), which both the recovery theory and the
//! mean-split decoder rely on. [`ZeroMeanDictionary`] removes the DC
//! atom: the 0/1 measurement gives the DC direction a gain ~`M·N/2`
//! larger than any zero-sum atom, so the pipeline estimates the mean
//! separately (from the known per-row selection counts) and recovers
//! only the zero-mean component through Ψ — see `tepics-core`'s decoder.

use crate::fused::{RowStagedDictionary, StagedDictionary};
use tepics_imaging::{Dct2d, Haar2d};

/// An orthonormal synthesis/analysis pair.
pub trait Dictionary {
    /// Signal dimension (pixel count).
    fn dim(&self) -> usize;

    /// Number of atoms (equals `dim` for the orthonormal bases here).
    fn atoms(&self) -> usize;

    /// Computes `x = Ψ α`.
    ///
    /// # Panics
    ///
    /// Implementations panic on length mismatches.
    fn synthesize(&self, alpha: &[f64], x: &mut [f64]);

    /// Computes `α = Ψᵀ x`.
    ///
    /// # Panics
    ///
    /// Implementations panic on length mismatches.
    fn analyze(&self, x: &[f64], alpha: &mut [f64]);

    /// Like [`synthesize`](Dictionary::synthesize), reusing `scratch`
    /// across calls so hot loops run allocation-free. The default
    /// forwards to `synthesize`; transform-backed dictionaries override
    /// it to route their internal buffers through `scratch`. Results
    /// are identical to `synthesize` either way.
    fn synthesize_with(&self, alpha: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        let _ = scratch;
        self.synthesize(alpha, x);
    }

    /// Like [`analyze`](Dictionary::analyze), reusing `scratch`; see
    /// [`synthesize_with`](Dictionary::synthesize_with).
    fn analyze_with(&self, x: &[f64], alpha: &mut [f64], scratch: &mut Vec<f64>) {
        let _ = scratch;
        self.analyze(x, alpha);
    }

    /// Allocating convenience for [`synthesize`](Dictionary::synthesize).
    fn synthesize_vec(&self, alpha: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.dim()];
        self.synthesize(alpha, &mut x);
        x
    }

    /// Allocating convenience for [`analyze`](Dictionary::analyze).
    fn analyze_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut a = vec![0.0; self.atoms()];
        self.analyze(x, &mut a);
        a
    }

    /// The row-staged view of this dictionary, when its separable
    /// transform exposes an independent per-row pass (see
    /// [`crate::fused`]). The composed operator uses it to fuse the
    /// transform with a row-streamed measurement; the default is
    /// `None`. [`ZeroMeanDictionary`] forwards its inner view with the
    /// pinned atom attached.
    fn row_staged(&self) -> Option<StagedDictionary<'_>> {
        None
    }
}

/// 2-D DCT dictionary: atoms are the separable cosine basis images.
///
/// # Examples
///
/// ```
/// use tepics_cs::{Dct2dDictionary, Dictionary};
///
/// let psi = Dct2dDictionary::new(8, 8);
/// let alpha = psi.analyze_vec(&vec![1.0; 64]);
/// // Constant image = pure DC atom.
/// assert!((alpha[0] - 8.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Dct2dDictionary {
    dct: Dct2d,
}

impl Dct2dDictionary {
    /// Creates a DCT dictionary for `width`×`height` images.
    pub fn new(width: usize, height: usize) -> Self {
        Dct2dDictionary {
            dct: Dct2d::new(width, height),
        }
    }

    /// Index of the DC atom (always 0 for the DCT).
    pub fn dc_index(&self) -> usize {
        0
    }
}

impl Dictionary for Dct2dDictionary {
    fn dim(&self) -> usize {
        self.dct.len()
    }

    fn atoms(&self) -> usize {
        self.dct.len()
    }

    fn synthesize(&self, alpha: &[f64], x: &mut [f64]) {
        self.dct.inverse_with(alpha, x, &mut Vec::new());
    }

    fn analyze(&self, x: &[f64], alpha: &mut [f64]) {
        self.dct.forward_with(x, alpha, &mut Vec::new());
    }

    fn synthesize_with(&self, alpha: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        self.dct.inverse_with(alpha, x, scratch);
    }

    fn analyze_with(&self, x: &[f64], alpha: &mut [f64], scratch: &mut Vec<f64>) {
        self.dct.forward_with(x, alpha, scratch);
    }

    fn row_staged(&self) -> Option<StagedDictionary<'_>> {
        Some(StagedDictionary::new(self))
    }
}

impl RowStagedDictionary for Dct2dDictionary {
    fn accepts_grid(&self, width: usize, height: usize) -> bool {
        self.dct.width() == width && self.dct.height() == height
    }

    // tidy:alloc-free
    fn analyze_rows(&self, rows: &mut [f64], scratch: &mut Vec<f64>) {
        self.dct.ensure_scratch(scratch);
        self.dct.rows_pass(rows, scratch, true);
    }

    // tidy:alloc-free
    fn analyze_finish(&self, buf: &mut [f64], scratch: &mut Vec<f64>) {
        self.dct.ensure_scratch(scratch);
        self.dct.cols_pass(buf, scratch, true);
    }

    // tidy:alloc-free
    fn synthesize_begin(&self, coeffs: &mut [f64], scratch: &mut Vec<f64>) {
        self.dct.ensure_scratch(scratch);
        self.dct.cols_pass(coeffs, scratch, false);
    }

    // tidy:alloc-free
    fn synthesize_rows(&self, rows: &mut [f64], scratch: &mut Vec<f64>) {
        self.dct.ensure_scratch(scratch);
        self.dct.rows_pass(rows, scratch, false);
    }
}

/// 2-D Haar wavelet dictionary.
#[derive(Debug, Clone)]
pub struct Haar2dDictionary {
    haar: Haar2d,
}

impl Haar2dDictionary {
    /// Creates a Haar dictionary with the deepest level count the
    /// dimensions allow.
    pub fn new(width: usize, height: usize) -> Self {
        let levels = Haar2d::max_levels(width, height);
        Haar2dDictionary {
            haar: Haar2d::new(width, height, levels),
        }
    }

    /// Creates a Haar dictionary with an explicit level count.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are not divisible by `2^levels`.
    pub fn with_levels(width: usize, height: usize, levels: usize) -> Self {
        Haar2dDictionary {
            haar: Haar2d::new(width, height, levels),
        }
    }

    /// Index of the scaling (DC) atom (always 0).
    pub fn dc_index(&self) -> usize {
        0
    }
}

impl Dictionary for Haar2dDictionary {
    fn dim(&self) -> usize {
        self.haar.len()
    }

    fn atoms(&self) -> usize {
        self.haar.len()
    }

    fn synthesize(&self, alpha: &[f64], x: &mut [f64]) {
        self.haar.inverse_with(alpha, x, &mut Vec::new());
    }

    fn analyze(&self, x: &[f64], alpha: &mut [f64]) {
        self.haar.forward_with(x, alpha, &mut Vec::new());
    }

    fn synthesize_with(&self, alpha: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        self.haar.inverse_with(alpha, x, scratch);
    }

    fn analyze_with(&self, x: &[f64], alpha: &mut [f64], scratch: &mut Vec<f64>) {
        self.haar.forward_with(x, alpha, scratch);
    }

    fn row_staged(&self) -> Option<StagedDictionary<'_>> {
        Some(StagedDictionary::new(self))
    }
}

impl RowStagedDictionary for Haar2dDictionary {
    fn accepts_grid(&self, width: usize, height: usize) -> bool {
        self.haar.width() == width && self.haar.height() == height
    }

    // tidy:alloc-free
    fn analyze_rows(&self, rows: &mut [f64], scratch: &mut Vec<f64>) {
        self.haar.forward_rows_step(rows, scratch);
    }

    // tidy:alloc-free
    fn analyze_finish(&self, buf: &mut [f64], scratch: &mut Vec<f64>) {
        self.haar.forward_finish(buf, scratch);
    }

    // tidy:alloc-free
    fn synthesize_begin(&self, coeffs: &mut [f64], scratch: &mut Vec<f64>) {
        self.haar.inverse_begin(coeffs, scratch);
    }

    // tidy:alloc-free
    fn synthesize_rows(&self, rows: &mut [f64], scratch: &mut Vec<f64>) {
        self.haar.inverse_rows_step(rows, scratch);
    }
}

/// Identity dictionary: the signal is sparse in the pixel domain itself
/// (star fields, point sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityDictionary {
    n: usize,
}

impl IdentityDictionary {
    /// Creates an identity dictionary of dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "dimension must be positive");
        IdentityDictionary { n }
    }
}

impl Dictionary for IdentityDictionary {
    fn dim(&self) -> usize {
        self.n
    }

    fn atoms(&self) -> usize {
        self.n
    }

    fn synthesize(&self, alpha: &[f64], x: &mut [f64]) {
        assert_eq!(alpha.len(), self.n, "length mismatch");
        x.copy_from_slice(alpha);
    }

    fn analyze(&self, x: &[f64], alpha: &mut [f64]) {
        assert_eq!(x.len(), self.n, "length mismatch");
        alpha.copy_from_slice(x);
    }

    fn row_staged(&self) -> Option<StagedDictionary<'_>> {
        Some(StagedDictionary::new(self))
    }
}

/// The identity transform stages trivially: every pass is a no-op, so
/// the fused drivers stream measurement rows straight into (or out of)
/// the coefficient buffer.
impl RowStagedDictionary for IdentityDictionary {
    fn accepts_grid(&self, width: usize, height: usize) -> bool {
        width * height == self.n
    }

    fn analyze_rows(&self, _rows: &mut [f64], _scratch: &mut Vec<f64>) {}

    fn analyze_finish(&self, _buf: &mut [f64], _scratch: &mut Vec<f64>) {}

    fn synthesize_begin(&self, _coeffs: &mut [f64], _scratch: &mut Vec<f64>) {}

    fn synthesize_rows(&self, _rows: &mut [f64], _scratch: &mut Vec<f64>) {}
}

/// Wrapper that pins one atom's coefficient to zero — used to exclude
/// the DC atom when the mean is recovered separately.
///
/// `synthesize` zeroes the pinned coefficient before synthesis;
/// `analyze` zeroes it after analysis. The wrapper stays self-adjoint,
/// so `Φ ∘ ZeroMean(Ψ)` keeps a valid adjoint pair.
#[derive(Debug, Clone)]
pub struct ZeroMeanDictionary<D> {
    inner: D,
    pinned: usize,
}

impl<D: Dictionary> ZeroMeanDictionary<D> {
    /// Wraps a dictionary, pinning atom `pinned` (usually the DC index).
    ///
    /// # Panics
    ///
    /// Panics if `pinned >= inner.atoms()`.
    pub fn new(inner: D, pinned: usize) -> Self {
        assert!(pinned < inner.atoms(), "pinned atom out of range");
        ZeroMeanDictionary { inner, pinned }
    }

    /// The wrapped dictionary.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Index of the pinned atom.
    pub fn pinned(&self) -> usize {
        self.pinned
    }
}

impl<D: Dictionary> Dictionary for ZeroMeanDictionary<D> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn atoms(&self) -> usize {
        self.inner.atoms()
    }

    fn synthesize(&self, alpha: &[f64], x: &mut [f64]) {
        if alpha[self.pinned] == 0.0 {
            self.inner.synthesize(alpha, x);
        } else {
            let mut a = alpha.to_vec();
            a[self.pinned] = 0.0;
            self.inner.synthesize(&a, x);
        }
    }

    fn analyze(&self, x: &[f64], alpha: &mut [f64]) {
        self.inner.analyze(x, alpha);
        alpha[self.pinned] = 0.0;
    }

    fn synthesize_with(&self, alpha: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        // The solver loop keeps the pinned coefficient at exactly zero
        // (analyze pins it, and the iterates are linear combinations of
        // pinned vectors), so the hot path forwards without copying; a
        // nonzero pinned entry falls back to the defensive copy.
        if alpha[self.pinned] == 0.0 {
            self.inner.synthesize_with(alpha, x, scratch);
        } else {
            self.synthesize(alpha, x);
        }
    }

    fn analyze_with(&self, x: &[f64], alpha: &mut [f64], scratch: &mut Vec<f64>) {
        self.inner.analyze_with(x, alpha, scratch);
        alpha[self.pinned] = 0.0;
    }

    fn row_staged(&self) -> Option<StagedDictionary<'_>> {
        // Forward the inner staging with the pin attached; a dictionary
        // that already carries a pin (nested wrappers) refuses, falling
        // back to the two-pass path.
        self.inner
            .row_staged()
            .and_then(|staged| staged.with_pin(self.pinned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_util::SplitMix64;

    fn check_orthonormal<D: Dictionary>(d: &D, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..d.dim()).map(|_| rng.next_gaussian()).collect();
        // Perfect reconstruction.
        let back = d.synthesize_vec(&d.analyze_vec(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
        // Adjoint identity ⟨Ψα, x⟩ = ⟨α, Ψᵀx⟩.
        let alpha: Vec<f64> = (0..d.atoms()).map(|_| rng.next_gaussian()).collect();
        let lhs = crate::op::dot(&d.synthesize_vec(&alpha), &x);
        let rhs = crate::op::dot(&alpha, &d.analyze_vec(&x));
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn dct_haar_identity_are_orthonormal() {
        check_orthonormal(&Dct2dDictionary::new(8, 8), 1);
        check_orthonormal(&Dct2dDictionary::new(12, 8), 2);
        check_orthonormal(&Haar2dDictionary::new(16, 16), 3);
        check_orthonormal(&IdentityDictionary::new(37), 4);
    }

    #[test]
    fn dc_atom_of_dct_is_constant_image() {
        let d = Dct2dDictionary::new(8, 8);
        let mut alpha = vec![0.0; 64];
        alpha[d.dc_index()] = 1.0;
        let x = d.synthesize_vec(&alpha);
        let expected = 1.0 / 8.0; // 1/sqrt(64)
        for v in x {
            assert!((v - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn haar_dc_atom_is_constant_image() {
        let d = Haar2dDictionary::new(16, 16);
        let mut alpha = vec![0.0; 256];
        alpha[d.dc_index()] = 1.0;
        let x = d.synthesize_vec(&alpha);
        for v in &x {
            assert!((v - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_mean_wrapper_produces_zero_sum_images() {
        let mut rng = SplitMix64::new(9);
        let d = ZeroMeanDictionary::new(Dct2dDictionary::new(8, 8), 0);
        let alpha: Vec<f64> = (0..64).map(|_| rng.next_gaussian()).collect();
        let x = d.synthesize_vec(&alpha);
        let sum: f64 = x.iter().sum();
        assert!(sum.abs() < 1e-9, "synthesized image has mean {sum}");
        // Analysis pins the DC coefficient.
        let a = d.analyze_vec(&vec![1.0; 64]);
        assert_eq!(a[0], 0.0);
    }

    #[test]
    fn zero_mean_wrapper_is_self_adjoint_consistent() {
        let mut rng = SplitMix64::new(10);
        let d = ZeroMeanDictionary::new(Haar2dDictionary::new(8, 8), 0);
        let x: Vec<f64> = (0..64).map(|_| rng.next_gaussian()).collect();
        let alpha: Vec<f64> = (0..64).map(|_| rng.next_gaussian()).collect();
        let lhs = crate::op::dot(&d.synthesize_vec(&alpha), &x);
        let rhs = crate::op::dot(&alpha, &d.analyze_vec(&x));
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pinned atom out of range")]
    fn pinning_invalid_atom_panics() {
        ZeroMeanDictionary::new(IdentityDictionary::new(4), 4);
    }
}
