//! Block-diagonal measurement for block-based compressive sampling.

use super::{DenseBinaryMeasurement, SelectionMeasurement};
use crate::op::LinearOperator;
use tepics_util::BitVec;

/// Independent dense binary measurements applied to consecutive segments
/// of the input (one segment per image block, block-major vectorization
/// as produced by `tepics_imaging::block::split_blocks`).
///
/// This is the ensemble of the paper's block-based baselines
/// (refs. \[6–8\], \[11\]): per-block Φ_b of size `k_b × B²`.
///
/// # Examples
///
/// ```
/// use tepics_cs::{BlockDiagonalMeasurement, LinearOperator};
///
/// // 4 blocks of 16 pixels, 6 measurements each.
/// let phi = BlockDiagonalMeasurement::bernoulli(4, 16, 6, 1, 0.5);
/// assert_eq!(phi.rows(), 24);
/// assert_eq!(phi.cols(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDiagonalMeasurement {
    block_dim: usize,
    rows_per_block: usize,
    blocks: Vec<DenseBinaryMeasurement>,
}

impl BlockDiagonalMeasurement {
    /// Builds from per-block measurements (all must share dimensions).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or dimensions are inconsistent.
    pub fn from_blocks(blocks: Vec<DenseBinaryMeasurement>) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let block_dim = blocks[0].cols();
        let rows_per_block = blocks[0].rows();
        for (b, m) in blocks.iter().enumerate() {
            assert_eq!(m.cols(), block_dim, "block {b} has inconsistent width");
            assert_eq!(m.rows(), rows_per_block, "block {b} has inconsistent rows");
        }
        BlockDiagonalMeasurement {
            block_dim,
            rows_per_block,
            blocks,
        }
    }

    /// Independent Bernoulli ensembles per block.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or invalid density.
    pub fn bernoulli(
        n_blocks: usize,
        block_dim: usize,
        rows_per_block: usize,
        seed: u64,
        density: f64,
    ) -> Self {
        assert!(n_blocks > 0, "need at least one block");
        let blocks = (0..n_blocks)
            .map(|b| {
                DenseBinaryMeasurement::bernoulli(
                    rows_per_block,
                    block_dim,
                    seed.wrapping_add(0x9E37_79B9 * (b as u64 + 1)),
                    density,
                )
            })
            .collect();
        BlockDiagonalMeasurement::from_blocks(blocks)
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Pixels per block.
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Measurements per block.
    pub fn rows_per_block(&self) -> usize {
        self.rows_per_block
    }

    /// The per-block measurement.
    pub fn block(&self, b: usize) -> &DenseBinaryMeasurement {
        &self.blocks[b]
    }
}

impl LinearOperator for BlockDiagonalMeasurement {
    fn rows(&self) -> usize {
        self.blocks.len() * self.rows_per_block
    }

    fn cols(&self) -> usize {
        self.blocks.len() * self.block_dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "input length mismatch");
        assert_eq!(y.len(), self.rows(), "output length mismatch");
        for (b, block) in self.blocks.iter().enumerate() {
            let xs = &x[b * self.block_dim..(b + 1) * self.block_dim];
            let ys = &mut y[b * self.rows_per_block..(b + 1) * self.rows_per_block];
            block.apply(xs, ys);
        }
    }

    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.rows(), "input length mismatch");
        assert_eq!(x.len(), self.cols(), "output length mismatch");
        for (b, block) in self.blocks.iter().enumerate() {
            let ys = &y[b * self.rows_per_block..(b + 1) * self.rows_per_block];
            let xs = &mut x[b * self.block_dim..(b + 1) * self.block_dim];
            block.apply_adjoint(ys, xs);
        }
    }
}

impl SelectionMeasurement for BlockDiagonalMeasurement {
    fn mask(&self, k: usize) -> BitVec {
        assert!(k < self.rows(), "row {k} out of range");
        let b = k / self.rows_per_block;
        let local = k % self.rows_per_block;
        let inner = self.blocks[b].mask(local);
        let mut out = BitVec::zeros(self.cols());
        for i in inner.iter_ones() {
            out.set(b * self.block_dim + i, true);
        }
        out
    }

    fn ones_in_row(&self, k: usize) -> usize {
        assert!(k < self.rows(), "row {k} out of range");
        let b = k / self.rows_per_block;
        self.blocks[b].ones_in_row(k % self.rows_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::adjoint_mismatch;

    #[test]
    fn block_structure_is_respected() {
        let m = BlockDiagonalMeasurement::bernoulli(3, 8, 4, 2, 0.5);
        // A vector supported on block 1 only affects rows 4..8.
        let mut x = vec![0.0; 24];
        x[8..16].fill(1.0);
        let y = m.apply_vec(&x);
        assert!(y[..4].iter().all(|&v| v == 0.0));
        assert!(y[8..].iter().all(|&v| v == 0.0));
        assert!(y[4..8].iter().any(|&v| v > 0.0));
    }

    #[test]
    fn masks_are_confined_to_their_block() {
        let m = BlockDiagonalMeasurement::bernoulli(3, 8, 4, 2, 0.5);
        for k in 0..m.rows() {
            let b = k / 4;
            let mask = m.mask(k);
            for i in mask.iter_ones() {
                assert!(
                    i >= b * 8 && i < (b + 1) * 8,
                    "row {k} leaks outside block {b}"
                );
            }
        }
    }

    #[test]
    fn blocks_use_distinct_seeds() {
        let m = BlockDiagonalMeasurement::bernoulli(2, 16, 8, 7, 0.5);
        assert_ne!(m.block(0), m.block(1));
    }

    #[test]
    fn adjoint_identity_holds() {
        let m = BlockDiagonalMeasurement::bernoulli(4, 16, 6, 5, 0.4);
        assert!(adjoint_mismatch(&m, 10, 8) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inconsistent width")]
    fn mixed_block_dims_panic() {
        BlockDiagonalMeasurement::from_blocks(vec![
            DenseBinaryMeasurement::bernoulli(2, 8, 1, 0.5),
            DenseBinaryMeasurement::bernoulli(2, 9, 1, 0.5),
        ]);
    }
}
