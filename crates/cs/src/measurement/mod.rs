//! Binary measurement ensembles.
//!
//! The sensor's compressed samples are sums of *selected* pixels:
//! `y_k = Σ_{i ∈ mask_k} x_i`, i.e. Φ is a 0/1 matrix. Three physical
//! layouts are modeled:
//!
//! * [`XorMeasurement`] — the paper's full-frame strategy: pixel `(i,j)`
//!   is selected iff `S_i ⊕ S_j = 1` with row/column bits from a pattern
//!   source (the CA ring). The matrix is never materialized — each row
//!   is described by only `M + N` bits, which is the entire point of the
//!   architecture.
//! * [`DenseBinaryMeasurement`] — explicit per-row masks, used for the
//!   idealized Bernoulli/thresholded-Gaussian baselines and for LFSR /
//!   Hadamard strategies (any [`BitPatternSource`](tepics_ca::BitPatternSource) of full pixel-count
//!   patterns).
//! * [`BlockDiagonalMeasurement`] — the block-based CS baseline
//!   (refs. \[6–8\], \[11\]): independent small dense ensembles per image
//!   block.
//!
//! All ensembles implement [`LinearOperator`] (0/1 arithmetic in `f64`)
//! and [`SelectionMeasurement`] (mask access + per-row selection counts,
//! which the mean-split decoder needs).

mod block;
mod dense;
mod xor;

pub use block::BlockDiagonalMeasurement;
pub use dense::DenseBinaryMeasurement;
#[doc(hidden)]
pub use xor::subset_sum_kernel;
pub use xor::XorMeasurement;

use crate::op::LinearOperator;
use tepics_util::BitVec;

/// Common interface of 0/1 measurement ensembles.
pub trait SelectionMeasurement: LinearOperator {
    /// Materializes the selection mask of measurement `k` over all
    /// `cols()` pixels.
    ///
    /// # Panics
    ///
    /// Implementations panic if `k >= rows()`.
    fn mask(&self, k: usize) -> BitVec;

    /// Number of selected pixels in measurement `k`. Implementations
    /// should override when it is computable without materializing the
    /// mask.
    fn ones_in_row(&self, k: usize) -> usize {
        self.mask(k).count_ones()
    }

    /// The per-row selection counts `c_k` as floats — the regressor the
    /// mean-split decoder uses to estimate the scene mean
    /// (`μ̂ = ⟨c,y⟩ / ⟨c,c⟩`).
    fn selection_counts(&self) -> Vec<f64> {
        (0..self.rows())
            .map(|k| self.ones_in_row(k) as f64)
            .collect()
    }
}

/// Shared 0/1 apply used by mask-based implementations.
pub(crate) fn apply_masks(masks: &[BitVec], x: &[f64], y: &mut [f64]) {
    for (k, mask) in masks.iter().enumerate() {
        y[k] = mask.iter_ones().map(|i| x[i]).sum();
    }
}

/// Shared 0/1 adjoint used by mask-based implementations.
pub(crate) fn adjoint_masks(masks: &[BitVec], y: &[f64], x: &mut [f64]) {
    x.fill(0.0);
    for (k, mask) in masks.iter().enumerate() {
        let yk = y[k];
        if yk == 0.0 {
            continue;
        }
        for i in mask.iter_ones() {
            x[i] += yk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::adjoint_mismatch;
    use tepics_ca::{BernoulliSource, CaSource, ElementaryRule};

    /// Every ensemble's operator view must match its own materialized
    /// masks — the single most important invariant of this module.
    fn check_operator_matches_masks<M: SelectionMeasurement>(m: &M, seed: u64) {
        let mut rng = tepics_util::SplitMix64::new(seed);
        let x: Vec<f64> = (0..m.cols()).map(|_| rng.next_f64() * 10.0).collect();
        let y = m.apply_vec(&x);
        for (k, &yk) in y.iter().enumerate() {
            let expected: f64 = m.mask(k).iter_ones().map(|i| x[i]).sum();
            assert!(
                (yk - expected).abs() < 1e-9,
                "row {k}: operator {yk} vs mask {expected}",
            );
            assert_eq!(m.ones_in_row(k), m.mask(k).count_ones());
        }
        assert!(adjoint_mismatch(m, 5, seed) < 1e-12);
    }

    #[test]
    fn xor_measurement_consistency() {
        let mut src = CaSource::new(8 + 8, 3, ElementaryRule::RULE_30, 32, 1);
        let m = XorMeasurement::from_source(8, 8, &mut src, 20);
        check_operator_matches_masks(&m, 1);
    }

    #[test]
    fn dense_measurement_consistency() {
        let m = DenseBinaryMeasurement::bernoulli(15, 64, 5, 0.5);
        check_operator_matches_masks(&m, 2);
    }

    #[test]
    fn block_measurement_consistency() {
        let m = BlockDiagonalMeasurement::bernoulli(4, 16, 6, 9, 0.5);
        check_operator_matches_masks(&m, 3);
    }

    #[test]
    fn selection_counts_match_masks() {
        let mut src = BernoulliSource::balanced(12, 8);
        let m = DenseBinaryMeasurement::from_source(&mut src, 7);
        let counts = m.selection_counts();
        for (k, &count) in counts.iter().enumerate() {
            assert_eq!(count, m.mask(k).count_ones() as f64);
        }
    }
}
