//! The paper's XOR-structured full-frame measurement.
//!
//! Pixel `(i, j)` contributes to compressed sample `k` iff
//! `S_i(k) ⊕ S_j(k) = 1`, where the `M + N` selection bits come from the
//! CA ring around the array (Fig. 1 pixel XOR gate + Fig. 2 floorplan).
//! A row of Φ is therefore fully described by `M + N` bits instead of
//! `M·N` — the compression that makes on-chip generation feasible — and
//! this type keeps exactly that representation.
//!
//! # Fast application
//!
//! Because `r ⊕ c = r + c − 2rc`, a compressed sample factorizes into
//! row-sum/column-sum inner products plus one masked block sum:
//!
//! ```text
//! y_k = Σ_{i∈R_k} R_i + Σ_{j∈C_k} C_j − 2·Σ_{i∈R_k} Σ_{j∈C_k} x_ij
//! ```
//!
//! with `R_i`/`C_j` the image row/column sums and `R_k`/`C_k` the
//! selected row/column index sets of pattern `k`. The constructor
//! precompiles those index sets (plus per-group bit masks) once, so
//! `apply`/`apply_adjoint` are pure gather-sums over precomputed
//! indices — no per-call bit extraction. On top of that, the block sums
//! are evaluated through eight-element subset-sum tables (the method of
//! four Russians): one 256-entry table per group of eight columns turns
//! the inner gather into one lookup per group. The adjoint uses the
//! same factorization transposed, with measurements grouped by eight.
//!
//! The factorized paths reassociate floating-point additions, so
//! results may differ from the naive selected-pixel sum in the last
//! bits; the difference stays below 1e-10 (relative) and is pinned down
//! by equivalence tests against the brute-force reference. Both paths
//! are deterministic, so batch results stay bit-identical at any thread
//! count.

use std::cell::RefCell;

use super::SelectionMeasurement;
use crate::fused::{FusedScratch, RowStreamedOperator};
use crate::op::LinearOperator;
use tepics_ca::BitPatternSource;
use tepics_util::{simd, BitVec};

thread_local! {
    /// Per-thread scratch for the direct (non-composed) apply paths,
    /// which route through the same streaming kernels as the fused
    /// engine. Reused across calls (resize on a warm vector never
    /// reallocates), so the solver loop does no per-iteration heap
    /// allocation; thread-local keeps a cached operator shareable
    /// across batch workers.
    static SCRATCH: RefCell<FusedScratch> = const { RefCell::new(FusedScratch::new()) };
}

/// Subset sums of up to eight values: `table[mask] = Σ_{t∈mask} vals[t]`
/// (missing values count as zero). `table.len() == 256`.
///
/// Built by doubling: each value extends the table by one vectorizable
/// `dst = src + v` sweep over the prefix (9 contiguous passes instead of
/// 255 data-dependent lookups). Sums therefore accumulate in ascending
/// bit order, a reassociation of the old low-bit recurrence — covered by
/// the ≤1e-10 equivalence bounds, and deterministic like everything
/// else here.
// tidy:alloc-free
fn subset_sums(vals: &[f64], table: &mut [f64]) {
    table[0] = 0.0;
    let mut len = 1usize;
    for &v in vals {
        let (lo, hi) = table.split_at_mut(len);
        for (dst, &src) in hi[..len].iter_mut().zip(lo.iter()) {
            *dst = src + v;
        }
        len *= 2;
    }
    // Short groups: masks with bits ≥ vals.len() sum the same subset
    // (missing values are zero), so replicate the built prefix.
    while len < table.len() {
        let (lo, hi) = table.split_at_mut(len);
        hi[..len].copy_from_slice(lo);
        len *= 2;
    }
}

/// Benchmark hook for the subset-sum table build (the adjoint's
/// method-of-four-Russians kernel). Not part of the public API surface;
/// exists so `tepics-bench` can time the real kernel in isolation.
#[doc(hidden)]
pub fn subset_sum_kernel(vals: &[f64], table: &mut [f64]) {
    subset_sums(vals, table);
}

/// Four-accumulator gather-sum `Σ vals[idx[t]]` in index order.
// tidy:alloc-free
#[inline]
fn gather4(vals: &[f64], idx: &[u32]) -> f64 {
    let mut s = [0.0f64; 4];
    let mut chunks = idx.chunks_exact(4);
    for c in &mut chunks {
        s[0] += vals[c[0] as usize];
        s[1] += vals[c[1] as usize];
        s[2] += vals[c[2] as usize];
        s[3] += vals[c[3] as usize];
    }
    let mut acc = (s[0] + s[1]) + (s[2] + s[3]);
    for &j in chunks.remainder() {
        acc += vals[j as usize];
    }
    acc
}

/// Four-accumulator gather over per-group 256-entry subset tables:
/// `Σ_g tables[g·256 + masks[g]]`.
// tidy:alloc-free
#[inline]
fn table_gather4(tables: &[f64], masks: &[u8]) -> f64 {
    let mut s = [0.0f64; 4];
    let mut chunks = masks.chunks_exact(4);
    let mut g = 0usize;
    for c in &mut chunks {
        s[0] += tables[g * 256 + c[0] as usize];
        s[1] += tables[(g + 1) * 256 + c[1] as usize];
        s[2] += tables[(g + 2) * 256 + c[2] as usize];
        s[3] += tables[(g + 3) * 256 + c[3] as usize];
        g += 4;
    }
    let mut acc = (s[0] + s[1]) + (s[2] + s[3]);
    for &mask in chunks.remainder() {
        acc += tables[g * 256 + mask as usize];
        g += 1;
    }
    acc
}

/// XOR-structured binary measurement over an `rows_m × cols_n` pixel
/// array (row-major pixel vectorization, `pixel = i · N + j`).
///
/// # Examples
///
/// ```
/// use tepics_ca::{CaSource, ElementaryRule};
/// use tepics_cs::{LinearOperator, XorMeasurement};
///
/// let mut src = CaSource::new(16 + 16, 9, ElementaryRule::RULE_30, 64, 1);
/// let phi = XorMeasurement::from_source(16, 16, &mut src, 40);
/// assert_eq!(phi.rows(), 40);
/// assert_eq!(phi.cols(), 256);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorMeasurement {
    rows_m: usize,
    cols_n: usize,
    /// One `(M + N)`-bit pattern per measurement: bits `0..M` are row
    /// selections, bits `M..M+N` column selections.
    patterns: Vec<BitVec>,
    /// Selected row indices of every measurement, flattened;
    /// measurement `k` owns `sel_rows[sel_rows_off[k]..sel_rows_off[k+1]]`.
    sel_rows: Vec<u32>,
    /// Offsets into [`XorMeasurement::sel_rows`], length `K + 1`.
    sel_rows_off: Vec<u32>,
    /// Selected column indices, flattened like `sel_rows`.
    sel_cols: Vec<u32>,
    /// Offsets into [`XorMeasurement::sel_cols`], length `K + 1`.
    sel_cols_off: Vec<u32>,
    /// Measurements selecting array row `i`, flattened; row `i` owns
    /// `meas_by_row[meas_by_row_off[i]..meas_by_row_off[i+1]]`.
    meas_by_row: Vec<u32>,
    /// Offsets into [`XorMeasurement::meas_by_row`], length `M + 1`.
    meas_by_row_off: Vec<u32>,
    /// Per-measurement selected-column masks over groups of eight
    /// columns: byte `k·⌈N/8⌉ + g` covers columns `8g..8g+8`.
    col_group_masks: Vec<u8>,
    /// Row-selection bits transposed into measurement-groups of eight:
    /// byte `g·M + i` holds bit `t` iff measurement `8g + t` selects
    /// row `i`.
    row_meas_masks: Vec<u8>,
    /// Column-selection bits transposed like `row_meas_masks`
    /// (byte `g·N + j`).
    col_meas_masks: Vec<u8>,
    /// Whether `apply` should amortize block sums through subset-sum
    /// tables (worth it once each array row feeds enough measurements).
    apply_tables: bool,
}

impl XorMeasurement {
    /// Builds a measurement by drawing `k` patterns from a source whose
    /// `pattern_len` is `rows_m + cols_n`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero, `k == 0`, or the source pattern
    /// length does not equal `rows_m + cols_n`.
    pub fn from_source<S: BitPatternSource + ?Sized>(
        rows_m: usize,
        cols_n: usize,
        source: &mut S,
        k: usize,
    ) -> Self {
        assert!(
            rows_m > 0 && cols_n > 0,
            "array dimensions must be positive"
        );
        assert!(k > 0, "need at least one measurement");
        assert_eq!(
            source.pattern_len(),
            rows_m + cols_n,
            "source pattern length {} != M+N = {}",
            source.pattern_len(),
            rows_m + cols_n
        );
        let patterns = (0..k).map(|_| source.next_pattern()).collect();
        Self::build(rows_m, cols_n, patterns)
    }

    /// Builds a measurement from explicit `(M+N)`-bit patterns.
    ///
    /// # Panics
    ///
    /// Panics on empty or wrong-length patterns.
    pub fn from_patterns(rows_m: usize, cols_n: usize, patterns: Vec<BitVec>) -> Self {
        assert!(
            rows_m > 0 && cols_n > 0,
            "array dimensions must be positive"
        );
        assert!(!patterns.is_empty(), "need at least one pattern");
        for (k, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), rows_m + cols_n, "pattern {k} has wrong length");
        }
        Self::build(rows_m, cols_n, patterns)
    }

    /// Precompiles the gather structures from the raw patterns (see the
    /// module docs); everything below is a pure function of `patterns`.
    fn build(rows_m: usize, cols_n: usize, patterns: Vec<BitVec>) -> Self {
        let (m, n) = (rows_m, cols_n);
        let k_count = patterns.len();
        let col_groups = n.div_ceil(8);
        let meas_groups = k_count.div_ceil(8);

        let mut sel_rows = Vec::new();
        let mut sel_rows_off = Vec::with_capacity(k_count + 1);
        let mut sel_cols = Vec::new();
        let mut sel_cols_off = Vec::with_capacity(k_count + 1);
        let mut col_group_masks = vec![0u8; k_count * col_groups];
        let mut row_meas_masks = vec![0u8; meas_groups * m];
        let mut col_meas_masks = vec![0u8; meas_groups * n];
        sel_rows_off.push(0);
        sel_cols_off.push(0);
        for (k, p) in patterns.iter().enumerate() {
            let (g, t) = (k / 8, (k % 8) as u8);
            for i in 0..m {
                if p.get(i) {
                    sel_rows.push(i as u32);
                    row_meas_masks[g * m + i] |= 1 << t;
                }
            }
            for j in 0..n {
                if p.get(m + j) {
                    sel_cols.push(j as u32);
                    col_group_masks[k * col_groups + j / 8] |= 1 << (j % 8);
                    col_meas_masks[g * n + j] |= 1 << t;
                }
            }
            sel_rows_off.push(sel_rows.len() as u32);
            sel_cols_off.push(sel_cols.len() as u32);
        }

        let mut meas_by_row_off = vec![0u32; m + 1];
        for &i in &sel_rows {
            meas_by_row_off[i as usize + 1] += 1;
        }
        for i in 0..m {
            meas_by_row_off[i + 1] += meas_by_row_off[i];
        }
        let mut meas_by_row = vec![0u32; sel_rows.len()];
        let mut cursor: Vec<u32> = meas_by_row_off[..m].to_vec();
        for k in 0..k_count {
            let (lo, hi) = (sel_rows_off[k] as usize, sel_rows_off[k + 1] as usize);
            for &i in &sel_rows[lo..hi] {
                let c = &mut cursor[i as usize];
                meas_by_row[*c as usize] = k as u32;
                *c += 1;
            }
        }

        // Table amortization break-even: per array row, the table build
        // costs 256·⌈N/8⌉ adds; each measurement gathered through it
        // saves ~(b − ⌈N/8⌉) adds over the direct index gather.
        let direct_cost: usize = (0..k_count)
            .map(|k| {
                let a = (sel_rows_off[k + 1] - sel_rows_off[k]) as usize;
                let b = (sel_cols_off[k + 1] - sel_cols_off[k]) as usize;
                a * b
            })
            .sum();
        let table_cost = m * 256 * col_groups + sel_rows.len() * (col_groups + 1);
        let apply_tables = table_cost < direct_cost;

        XorMeasurement {
            rows_m,
            cols_n,
            patterns,
            sel_rows,
            sel_rows_off,
            sel_cols,
            sel_cols_off,
            meas_by_row,
            meas_by_row_off,
            col_group_masks,
            row_meas_masks,
            col_meas_masks,
            apply_tables,
        }
    }

    /// Array height M.
    pub fn array_rows(&self) -> usize {
        self.rows_m
    }

    /// Approximate heap footprint in bytes (for cache accounting):
    /// the bit patterns plus every precompiled index list and mask
    /// table.
    #[must_use]
    pub fn bytes(&self) -> usize {
        let pattern_words = (self.rows_m + self.cols_n).div_ceil(64);
        self.patterns.len() * pattern_words * std::mem::size_of::<u64>()
            + (self.sel_rows.len()
                + self.sel_rows_off.len()
                + self.sel_cols.len()
                + self.sel_cols_off.len()
                + self.meas_by_row.len()
                + self.meas_by_row_off.len())
                * std::mem::size_of::<u32>()
            + self.col_group_masks.len()
            + self.row_meas_masks.len()
            + self.col_meas_masks.len()
    }

    /// Array width N.
    pub fn array_cols(&self) -> usize {
        self.cols_n
    }

    /// Row-selection bit `S_i` of measurement `k`.
    #[inline]
    pub fn row_bit(&self, k: usize, i: usize) -> bool {
        assert!(i < self.rows_m, "row index out of range");
        self.patterns[k].get(i)
    }

    /// Column-selection bit `S_j` of measurement `k`.
    #[inline]
    pub fn col_bit(&self, k: usize, j: usize) -> bool {
        assert!(j < self.cols_n, "column index out of range");
        self.patterns[k].get(self.rows_m + j)
    }

    /// `true` iff pixel `(i, j)` contributes to measurement `k`.
    #[inline]
    pub fn selected(&self, k: usize, i: usize, j: usize) -> bool {
        self.row_bit(k, i) ^ self.col_bit(k, j)
    }

    /// The raw `(M+N)`-bit pattern of measurement `k`.
    pub fn pattern(&self, k: usize) -> &BitVec {
        &self.patterns[k]
    }

    /// The precompiled selected row indices of measurement `k`.
    pub fn selected_rows(&self, k: usize) -> &[u32] {
        &self.sel_rows[self.sel_rows_off[k] as usize..self.sel_rows_off[k + 1] as usize]
    }

    /// The precompiled selected column indices of measurement `k`.
    pub fn selected_cols(&self, k: usize) -> &[u32] {
        &self.sel_cols[self.sel_cols_off[k] as usize..self.sel_cols_off[k + 1] as usize]
    }

    /// Number of selected row bits / column bits in measurement `k`
    /// (O(1) from the precompiled offsets).
    pub fn pattern_weights(&self, k: usize) -> (usize, usize) {
        (self.selected_rows(k).len(), self.selected_cols(k).len())
    }

    /// The four row-selection mask bytes of image row `i` for a gang of
    /// four measurement groups.
    #[inline]
    fn row_quad_masks(&self, quad: &[u32], i: usize) -> [u8; 4] {
        let m = self.rows_m;
        [
            self.row_meas_masks[quad[0] as usize * m + i],
            self.row_meas_masks[quad[1] as usize * m + i],
            self.row_meas_masks[quad[2] as usize * m + i],
            self.row_meas_masks[quad[3] as usize * m + i],
        ]
    }
}

/// One image row of the gang-of-four adjoint scatter:
/// `x_j += Σ_g t_g[r_g & c_g[j]]` over the four ganged groups.
// tidy:alloc-free
#[inline]
#[allow(clippy::too_many_arguments)]
fn quad_row_sweep(
    row: &mut [f64],
    r: [u8; 4],
    t0: &[f64],
    t1: &[f64],
    t2: &[f64],
    t3: &[f64],
    c0: &[u8],
    c1: &[u8],
    c2: &[u8],
    c3: &[u8],
) {
    for (j, xv) in row.iter_mut().enumerate() {
        let a = t0[(r[0] & c0[j]) as usize] + t1[(r[1] & c1[j]) as usize];
        let b = t2[(r[2] & c2[j]) as usize] + t3[(r[3] & c3[j]) as usize];
        *xv += a + b;
    }
}

/// Streaming kernels (see [`crate::fused`]): `adjoint_begin` hoists the
/// per-group subset-sum tables and broadcast vectors out of the row
/// loop, after which any row block of the adjoint image
/// `x_ij = P_i + Q_j − 2·Σ_k y_k r_ki c_kj` can be emitted
/// independently; the forward direction mirrors it, accumulating the
/// factorized contributions as pixel rows arrive and deferring the
/// column-sum term to `apply_finish`. The direct
/// [`LinearOperator::apply`]/[`LinearOperator::apply_adjoint`] entry
/// points run these same kernels over a single full-height block, so
/// fused and direct paths share one audited implementation.
impl RowStreamedOperator for XorMeasurement {
    fn image_rows(&self) -> usize {
        self.rows_m
    }

    fn image_cols(&self) -> usize {
        self.cols_n
    }

    // tidy:alloc-free
    fn adjoint_begin(&self, y: &[f64], fs: &mut FusedScratch) {
        assert_eq!(y.len(), self.rows(), "input length mismatch");
        let (m, n) = (self.rows_m, self.cols_n);
        let meas_groups = self.patterns.len().div_ceil(8);
        fs.tables.resize(meas_groups * 256, 0.0);
        fs.p.clear();
        fs.p.resize(m, 0.0);
        fs.q.clear();
        fs.q.resize(n, 0.0);
        fs.active.clear();
        let mut tmp = [0.0f64; 256];
        for (g, ys) in y.chunks(8).enumerate() {
            if ys.iter().all(|&v| v == 0.0) {
                continue;
            }
            subset_sums(ys, &mut tmp);
            let gammas = &self.col_meas_masks[g * n..(g + 1) * n];
            for (qj, &gm) in fs.q.iter_mut().zip(gammas) {
                *qj += tmp[gm as usize];
            }
            let rhos = &self.row_meas_masks[g * m..(g + 1) * m];
            for (pi, &rho) in fs.p.iter_mut().zip(rhos) {
                if rho != 0 {
                    *pi += tmp[rho as usize];
                }
            }
            // Stored premultiplied by −2 so the block scatter is a pure
            // lookup-add.
            let slot = fs.active.len() * 256;
            for (dst, &v) in fs.tables[slot..slot + 256].iter_mut().zip(tmp.iter()) {
                *dst = -2.0 * v;
            }
            fs.active.push(g as u32);
        }
    }

    // tidy:alloc-free
    fn adjoint_block(&self, i0: usize, i1: usize, block: &mut [f64], fs: &FusedScratch) {
        let (m, n) = (self.rows_m, self.cols_n);
        assert!(i0 <= i1 && i1 <= m, "row range out of bounds");
        assert_eq!(block.len(), (i1 - i0) * n, "block length mismatch");
        // Broadcast part first: x_ij starts at P_i + Q_j.
        for (di, row) in block.chunks_exact_mut(n).enumerate() {
            let pi = fs.p[i0 + di];
            for (xv, &qj) in row.iter_mut().zip(fs.q.iter()) {
                *xv = pi + qj;
            }
        }
        // Gang of four active measurement groups in the outer loop: the
        // four 256-entry tables (8 KiB) and their column masks stay
        // L1-resident across the entire row block, while the four
        // independent lookups per pixel give the out-of-order core
        // parallel loads. (Group-major order also makes the per-pixel
        // accumulation order independent of the block split, so
        // streamed decodes stay bit-identical to one-shot ones.)
        let mut quads = fs.active.chunks_exact(4);
        let mut slot = 0usize;
        for quad in &mut quads {
            let (t0, rest) = fs.tables[slot * 256..(slot + 4) * 256].split_at(256);
            let (t1, rest) = rest.split_at(256);
            let (t2, t3) = rest.split_at(256);
            let c0 = &self.col_meas_masks[quad[0] as usize * n..quad[0] as usize * n + n];
            let c1 = &self.col_meas_masks[quad[1] as usize * n..quad[1] as usize * n + n];
            let c2 = &self.col_meas_masks[quad[2] as usize * n..quad[2] as usize * n + n];
            let c3 = &self.col_meas_masks[quad[3] as usize * n..quad[3] as usize * n + n];
            for (di, row) in block.chunks_exact_mut(n).enumerate() {
                let r = self.row_quad_masks(quad, i0 + di);
                if r != [0u8; 4] {
                    quad_row_sweep(row, r, t0, t1, t2, t3, c0, c1, c2, c3);
                }
            }
            slot += 4;
        }
        for &g in quads.remainder() {
            let g = g as usize;
            let t = &fs.tables[slot * 256..slot * 256 + 256];
            let gammas = &self.col_meas_masks[g * n..(g + 1) * n];
            for (di, row) in block.chunks_exact_mut(n).enumerate() {
                let rho = self.row_meas_masks[g * m + i0 + di];
                if rho != 0 {
                    for (xv, &gm) in row.iter_mut().zip(gammas) {
                        *xv += t[(rho & gm) as usize];
                    }
                }
            }
            slot += 1;
        }
    }

    // tidy:alloc-free
    fn apply_begin(&self, y: &mut [f64], fs: &mut FusedScratch) {
        assert_eq!(y.len(), self.rows(), "output length mismatch");
        y.fill(0.0);
        fs.colsums.clear();
        fs.colsums.resize(self.cols_n, 0.0);
        if self.apply_tables {
            fs.row_tables.resize(256 * self.cols_n.div_ceil(8), 0.0);
        }
    }

    // tidy:alloc-free
    fn apply_block(
        &self,
        i0: usize,
        i1: usize,
        block: &[f64],
        y: &mut [f64],
        fs: &mut FusedScratch,
    ) {
        let (m, n) = (self.rows_m, self.cols_n);
        assert!(i0 <= i1 && i1 <= m, "row range out of bounds");
        assert_eq!(block.len(), (i1 - i0) * n, "block length mismatch");
        let col_groups = n.div_ceil(8);
        for (di, row) in block.chunks_exact(n).enumerate() {
            let i = i0 + di;
            for (c, &v) in fs.colsums.iter_mut().zip(row) {
                *c += v;
            }
            let meas = &self.meas_by_row
                [self.meas_by_row_off[i] as usize..self.meas_by_row_off[i + 1] as usize];
            if meas.is_empty() {
                continue;
            }
            let ri = simd::sum4(row);
            if self.apply_tables {
                // Build row i's subset tables once, then serve every
                // measurement that selects row i with one lookup per
                // column group.
                for (g, vals) in row.chunks(8).enumerate() {
                    subset_sums(vals, &mut fs.row_tables[g * 256..(g + 1) * 256]);
                }
                for &k in meas {
                    let masks = &self.col_group_masks
                        [k as usize * col_groups..(k as usize + 1) * col_groups];
                    let t = table_gather4(&fs.row_tables, masks);
                    y[k as usize] += ri - 2.0 * t;
                }
            } else {
                // Direct gather over the precompiled index lists.
                for &k in meas {
                    let t = gather4(row, self.selected_cols(k as usize));
                    y[k as usize] += ri - 2.0 * t;
                }
            }
        }
    }

    // tidy:alloc-free
    fn apply_finish(&self, y: &mut [f64], fs: &mut FusedScratch) {
        assert_eq!(y.len(), self.rows(), "output length mismatch");
        // Column-sum part: y_k += Σ_{j∈C_k} C_j.
        for (k, yk) in y.iter_mut().enumerate() {
            *yk += gather4(&fs.colsums, self.selected_cols(k));
        }
    }
}

impl LinearOperator for XorMeasurement {
    fn rows(&self) -> usize {
        self.patterns.len()
    }

    fn cols(&self) -> usize {
        self.rows_m * self.cols_n
    }

    // tidy:alloc-free
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "input length mismatch");
        assert_eq!(y.len(), self.rows(), "output length mismatch");
        SCRATCH.with_borrow_mut(|fs| {
            self.apply_begin(y, fs);
            self.apply_block(0, self.rows_m, x, y, fs);
            self.apply_finish(y, fs);
        });
    }

    // tidy:alloc-free
    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.rows(), "input length mismatch");
        assert_eq!(x.len(), self.cols(), "output length mismatch");
        SCRATCH.with_borrow_mut(|fs| {
            self.adjoint_begin(y, fs);
            self.adjoint_block(0, self.rows_m, x, fs);
        });
    }

    fn row_streamed(&self) -> Option<&dyn RowStreamedOperator> {
        Some(self)
    }

    fn column_into(&self, p: usize, out: &mut [f64]) {
        assert!(p < self.cols(), "column {p} out of range");
        assert_eq!(out.len(), self.rows(), "output length mismatch");
        let (i, j) = (p / self.cols_n, p % self.cols_n);
        for (k, o) in out.iter_mut().enumerate() {
            *o = if self.selected(k, i, j) { 1.0 } else { 0.0 };
        }
    }
}

impl SelectionMeasurement for XorMeasurement {
    fn mask(&self, k: usize) -> BitVec {
        assert!(k < self.patterns.len(), "row {k} out of range");
        let (m, n) = (self.rows_m, self.cols_n);
        let p = &self.patterns[k];
        BitVec::from_bools((0..m * n).map(|px| {
            let (i, j) = (px / n, px % n);
            p.get(i) ^ p.get(m + j)
        }))
    }

    fn ones_in_row(&self, k: usize) -> usize {
        // |{(i,j): r_i ⊕ c_j}| = a(N−b) + (M−a)b with a row-ones, b col-ones.
        let (a, b) = self.pattern_weights(k);
        a * (self.cols_n - b) + (self.rows_m - a) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::adjoint_mismatch;
    use tepics_ca::{CaSource, ElementaryRule, LfsrSource};
    use tepics_util::SplitMix64;

    fn sample(k: usize) -> XorMeasurement {
        let mut src = CaSource::new(12 + 10, 5, ElementaryRule::RULE_30, 40, 1);
        XorMeasurement::from_source(12, 10, &mut src, k)
    }

    /// Brute-force reference: the defining selected-pixel sums.
    fn bruteforce_apply(m: &XorMeasurement, x: &[f64]) -> Vec<f64> {
        let (rows, cols) = (m.array_rows(), m.array_cols());
        (0..m.rows())
            .map(|k| {
                let mut acc = 0.0;
                for i in 0..rows {
                    for j in 0..cols {
                        if m.selected(k, i, j) {
                            acc += x[i * cols + j];
                        }
                    }
                }
                acc
            })
            .collect()
    }

    #[test]
    fn selected_matches_mask_and_counts() {
        let m = sample(15);
        for k in 0..15 {
            let mask = m.mask(k);
            for i in 0..12 {
                for j in 0..10 {
                    assert_eq!(mask.get(i * 10 + j), m.selected(k, i, j));
                }
            }
            assert_eq!(m.ones_in_row(k), mask.count_ones());
        }
    }

    #[test]
    fn precompiled_index_lists_match_pattern_bits() {
        let m = sample(17);
        for k in 0..17 {
            let rows: Vec<u32> = (0..12u32).filter(|&i| m.row_bit(k, i as usize)).collect();
            let cols: Vec<u32> = (0..10u32).filter(|&j| m.col_bit(k, j as usize)).collect();
            assert_eq!(m.selected_rows(k), rows.as_slice(), "rows of {k}");
            assert_eq!(m.selected_cols(k), cols.as_slice(), "cols of {k}");
            assert_eq!(m.pattern_weights(k), (rows.len(), cols.len()));
        }
    }

    #[test]
    fn xor_guarantees_half_selection_on_balanced_patterns() {
        // With a=M/2 row bits and b=N/2 col bits set, exactly half the
        // pixels are selected: a(N−b)+(M−a)b = MN/2.
        let mut p = BitVec::zeros(8 + 8);
        for i in 0..4 {
            p.set(i, true); // 4 of 8 row bits
            p.set(8 + i, true); // 4 of 8 col bits
        }
        let m = XorMeasurement::from_patterns(8, 8, vec![p]);
        assert_eq!(m.ones_in_row(0), 32);
    }

    #[test]
    fn all_zero_pattern_selects_nothing() {
        let m = XorMeasurement::from_patterns(4, 4, vec![BitVec::zeros(8)]);
        assert_eq!(m.ones_in_row(0), 0);
        let y = m.apply_vec(&[1.0; 16]);
        assert_eq!(y[0], 0.0);
    }

    #[test]
    fn all_one_pattern_also_selects_nothing() {
        // r_i ⊕ c_j = 0 when both are 1: the XOR strategy's blind spot.
        let m = XorMeasurement::from_patterns(4, 4, vec![BitVec::ones(8)]);
        assert_eq!(m.ones_in_row(0), 0);
        let y = m.apply_vec(&[1.0; 16]);
        assert!(y[0].abs() < 1e-12);
    }

    #[test]
    fn apply_matches_bruteforce() {
        let m = sample(10);
        let mut rng = SplitMix64::new(2);
        let x: Vec<f64> = (0..120).map(|_| rng.next_f64()).collect();
        let y = m.apply_vec(&x);
        let expected = bruteforce_apply(&m, &x);
        for (k, (&yk, &ek)) in y.iter().zip(&expected).enumerate() {
            assert!((yk - ek).abs() < 1e-9, "row {k}");
        }
    }

    #[test]
    fn apply_matches_bruteforce_across_geometries() {
        // Property: the factorized fast paths equal the brute-force
        // selected() sums to ≤1e-10 (relative) at several geometries —
        // odd sizes, single row/column, column counts beyond one mask
        // word, and measurement counts off the group-of-eight grid.
        for &(rows, cols, k, seed) in &[
            (1usize, 1usize, 1usize, 1u64),
            (1, 13, 5, 2),
            (13, 1, 7, 3),
            (7, 9, 12, 4),
            (8, 8, 64, 5),
            (12, 10, 9, 6),
            (5, 70, 11, 7),   // columns span >8 groups
            (16, 16, 130, 8), // measurements span >16 groups
        ] {
            let mut src = CaSource::new(rows + cols, 3, ElementaryRule::RULE_30, 16, 1);
            let mut rng = SplitMix64::new(seed);
            let m = XorMeasurement::from_source(rows, cols, &mut src, k);
            let x: Vec<f64> = (0..rows * cols).map(|_| rng.next_f64() * 255.0).collect();
            let y = m.apply_vec(&x);
            let expected = bruteforce_apply(&m, &x);
            for (row, (&yk, &ek)) in y.iter().zip(&expected).enumerate() {
                assert!(
                    (yk - ek).abs() <= 1e-10 * ek.abs().max(1.0),
                    "{rows}×{cols} k={k} row {row}: {yk} vs {ek}"
                );
            }
            assert!(
                adjoint_mismatch(&m, 5, seed) < 1e-12,
                "{rows}×{cols} k={k} adjoint"
            );
        }
    }

    #[test]
    fn adjoint_matches_bruteforce_scatter() {
        let m = sample(21);
        let mut rng = SplitMix64::new(9);
        let y: Vec<f64> = (0..21).map(|_| rng.next_gaussian()).collect();
        let x = m.apply_adjoint_vec(&y);
        for i in 0..12 {
            for j in 0..10 {
                let expected: f64 = (0..21).filter(|&k| m.selected(k, i, j)).map(|k| y[k]).sum();
                let got = x[i * 10 + j];
                assert!(
                    (got - expected).abs() <= 1e-10 * expected.abs().max(1.0),
                    "pixel ({i},{j}): {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn adjoint_identity_holds() {
        let m = sample(25);
        assert!(adjoint_mismatch(&m, 10, 3) < 1e-12);
    }

    #[test]
    fn streamed_blocks_match_full_application_bitwise() {
        // The fused engine's contract: feeding the kernels any ascending
        // block partition reproduces the one-shot entry points exactly.
        let m = sample(21);
        let mut rng = SplitMix64::new(12);
        let y: Vec<f64> = (0..21).map(|_| rng.next_gaussian()).collect();
        let x: Vec<f64> = (0..120).map(|_| rng.next_f64() * 255.0).collect();
        let full_adj = m.apply_adjoint_vec(&y);
        let full_fwd = m.apply_vec(&x);
        let mut fs = FusedScratch::new();
        for step in [1usize, 3, 5, 12] {
            let mut adj = vec![0.0; 120];
            m.adjoint_begin(&y, &mut fs);
            let mut i0 = 0;
            while i0 < 12 {
                let i1 = (i0 + step).min(12);
                m.adjoint_block(i0, i1, &mut adj[i0 * 10..i1 * 10], &fs);
                i0 = i1;
            }
            assert_eq!(full_adj, adj, "adjoint step {step}");

            let mut fwd = vec![0.0; 21];
            m.apply_begin(&mut fwd, &mut fs);
            let mut i0 = 0;
            while i0 < 12 {
                let i1 = (i0 + step).min(12);
                m.apply_block(i0, i1, &x[i0 * 10..i1 * 10], &mut fwd, &mut fs);
                i0 = i1;
            }
            m.apply_finish(&mut fwd, &mut fs);
            assert_eq!(full_fwd, fwd, "forward step {step}");
        }
    }

    #[test]
    fn works_with_lfsr_source_too() {
        let mut src = LfsrSource::new(6 + 6, 16, 0xACE1);
        let m = XorMeasurement::from_source(6, 6, &mut src, 8);
        assert_eq!(m.rows(), 8);
        assert!(adjoint_mismatch(&m, 5, 4) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pattern length")]
    fn wrong_source_length_panics() {
        let mut src = LfsrSource::new(10, 16, 1);
        XorMeasurement::from_source(6, 6, &mut src, 2);
    }
}
