//! The paper's XOR-structured full-frame measurement.
//!
//! Pixel `(i, j)` contributes to compressed sample `k` iff
//! `S_i(k) ⊕ S_j(k) = 1`, where the `M + N` selection bits come from the
//! CA ring around the array (Fig. 1 pixel XOR gate + Fig. 2 floorplan).
//! A row of Φ is therefore fully described by `M + N` bits instead of
//! `M·N` — the compression that makes on-chip generation feasible — and
//! this type keeps exactly that representation.
//!
//! # Fast application
//!
//! Because `r ⊕ c = r + c − 2rc`, a compressed sample factorizes into
//! row-sum/column-sum inner products plus one masked block sum:
//!
//! ```text
//! y_k = Σ_{i∈R_k} R_i + Σ_{j∈C_k} C_j − 2·Σ_{i∈R_k} Σ_{j∈C_k} x_ij
//! ```
//!
//! with `R_i`/`C_j` the image row/column sums and `R_k`/`C_k` the
//! selected row/column index sets of pattern `k`. The constructor
//! precompiles those index sets (plus per-group bit masks) once, so
//! `apply`/`apply_adjoint` are pure gather-sums over precomputed
//! indices — no per-call bit extraction. On top of that, the block sums
//! are evaluated through eight-element subset-sum tables (the method of
//! four Russians): one 256-entry table per group of eight columns turns
//! the inner gather into one lookup per group. The adjoint uses the
//! same factorization transposed, with measurements grouped by eight.
//!
//! The factorized paths reassociate floating-point additions, so
//! results may differ from the naive selected-pixel sum in the last
//! bits; the difference stays below 1e-10 (relative) and is pinned down
//! by equivalence tests against the brute-force reference. Both paths
//! are deterministic, so batch results stay bit-identical at any thread
//! count.

use std::cell::RefCell;

use super::SelectionMeasurement;
use crate::op::LinearOperator;
use tepics_ca::BitPatternSource;
use tepics_util::BitVec;

thread_local! {
    /// Per-thread scratch for the factorized apply paths. Reused across
    /// calls (resize on a warm vector never reallocates), so the solver
    /// loop does no per-iteration heap allocation; thread-local keeps a
    /// cached operator shareable across batch workers.
    static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Subset sums of up to eight values: `table[mask] = Σ_{t∈mask} vals[t]`
/// (missing values count as zero). `table.len() == 256`.
fn subset_sums(vals: &[f64], table: &mut [f64]) {
    let mut v = [0.0f64; 8];
    v[..vals.len()].copy_from_slice(vals);
    table[0] = 0.0;
    for mask in 1usize..256 {
        let lsb = mask & mask.wrapping_neg();
        table[mask] = table[mask ^ lsb] + v[lsb.trailing_zeros() as usize];
    }
}

/// XOR-structured binary measurement over an `rows_m × cols_n` pixel
/// array (row-major pixel vectorization, `pixel = i · N + j`).
///
/// # Examples
///
/// ```
/// use tepics_ca::{CaSource, ElementaryRule};
/// use tepics_cs::{LinearOperator, XorMeasurement};
///
/// let mut src = CaSource::new(16 + 16, 9, ElementaryRule::RULE_30, 64, 1);
/// let phi = XorMeasurement::from_source(16, 16, &mut src, 40);
/// assert_eq!(phi.rows(), 40);
/// assert_eq!(phi.cols(), 256);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorMeasurement {
    rows_m: usize,
    cols_n: usize,
    /// One `(M + N)`-bit pattern per measurement: bits `0..M` are row
    /// selections, bits `M..M+N` column selections.
    patterns: Vec<BitVec>,
    /// Selected row indices of every measurement, flattened;
    /// measurement `k` owns `sel_rows[sel_rows_off[k]..sel_rows_off[k+1]]`.
    sel_rows: Vec<u32>,
    /// Offsets into [`XorMeasurement::sel_rows`], length `K + 1`.
    sel_rows_off: Vec<u32>,
    /// Selected column indices, flattened like `sel_rows`.
    sel_cols: Vec<u32>,
    /// Offsets into [`XorMeasurement::sel_cols`], length `K + 1`.
    sel_cols_off: Vec<u32>,
    /// Measurements selecting array row `i`, flattened; row `i` owns
    /// `meas_by_row[meas_by_row_off[i]..meas_by_row_off[i+1]]`.
    meas_by_row: Vec<u32>,
    /// Offsets into [`XorMeasurement::meas_by_row`], length `M + 1`.
    meas_by_row_off: Vec<u32>,
    /// Per-measurement selected-column masks over groups of eight
    /// columns: byte `k·⌈N/8⌉ + g` covers columns `8g..8g+8`.
    col_group_masks: Vec<u8>,
    /// Row-selection bits transposed into measurement-groups of eight:
    /// byte `g·M + i` holds bit `t` iff measurement `8g + t` selects
    /// row `i`.
    row_meas_masks: Vec<u8>,
    /// Column-selection bits transposed like `row_meas_masks`
    /// (byte `g·N + j`).
    col_meas_masks: Vec<u8>,
    /// Whether `apply` should amortize block sums through subset-sum
    /// tables (worth it once each array row feeds enough measurements).
    apply_tables: bool,
}

impl XorMeasurement {
    /// Builds a measurement by drawing `k` patterns from a source whose
    /// `pattern_len` is `rows_m + cols_n`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero, `k == 0`, or the source pattern
    /// length does not equal `rows_m + cols_n`.
    pub fn from_source<S: BitPatternSource + ?Sized>(
        rows_m: usize,
        cols_n: usize,
        source: &mut S,
        k: usize,
    ) -> Self {
        assert!(
            rows_m > 0 && cols_n > 0,
            "array dimensions must be positive"
        );
        assert!(k > 0, "need at least one measurement");
        assert_eq!(
            source.pattern_len(),
            rows_m + cols_n,
            "source pattern length {} != M+N = {}",
            source.pattern_len(),
            rows_m + cols_n
        );
        let patterns = (0..k).map(|_| source.next_pattern()).collect();
        Self::build(rows_m, cols_n, patterns)
    }

    /// Builds a measurement from explicit `(M+N)`-bit patterns.
    ///
    /// # Panics
    ///
    /// Panics on empty or wrong-length patterns.
    pub fn from_patterns(rows_m: usize, cols_n: usize, patterns: Vec<BitVec>) -> Self {
        assert!(
            rows_m > 0 && cols_n > 0,
            "array dimensions must be positive"
        );
        assert!(!patterns.is_empty(), "need at least one pattern");
        for (k, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), rows_m + cols_n, "pattern {k} has wrong length");
        }
        Self::build(rows_m, cols_n, patterns)
    }

    /// Precompiles the gather structures from the raw patterns (see the
    /// module docs); everything below is a pure function of `patterns`.
    fn build(rows_m: usize, cols_n: usize, patterns: Vec<BitVec>) -> Self {
        let (m, n) = (rows_m, cols_n);
        let k_count = patterns.len();
        let col_groups = n.div_ceil(8);
        let meas_groups = k_count.div_ceil(8);

        let mut sel_rows = Vec::new();
        let mut sel_rows_off = Vec::with_capacity(k_count + 1);
        let mut sel_cols = Vec::new();
        let mut sel_cols_off = Vec::with_capacity(k_count + 1);
        let mut col_group_masks = vec![0u8; k_count * col_groups];
        let mut row_meas_masks = vec![0u8; meas_groups * m];
        let mut col_meas_masks = vec![0u8; meas_groups * n];
        sel_rows_off.push(0);
        sel_cols_off.push(0);
        for (k, p) in patterns.iter().enumerate() {
            let (g, t) = (k / 8, (k % 8) as u8);
            for i in 0..m {
                if p.get(i) {
                    sel_rows.push(i as u32);
                    row_meas_masks[g * m + i] |= 1 << t;
                }
            }
            for j in 0..n {
                if p.get(m + j) {
                    sel_cols.push(j as u32);
                    col_group_masks[k * col_groups + j / 8] |= 1 << (j % 8);
                    col_meas_masks[g * n + j] |= 1 << t;
                }
            }
            sel_rows_off.push(sel_rows.len() as u32);
            sel_cols_off.push(sel_cols.len() as u32);
        }

        let mut meas_by_row_off = vec![0u32; m + 1];
        for &i in &sel_rows {
            meas_by_row_off[i as usize + 1] += 1;
        }
        for i in 0..m {
            meas_by_row_off[i + 1] += meas_by_row_off[i];
        }
        let mut meas_by_row = vec![0u32; sel_rows.len()];
        let mut cursor: Vec<u32> = meas_by_row_off[..m].to_vec();
        for k in 0..k_count {
            let (lo, hi) = (sel_rows_off[k] as usize, sel_rows_off[k + 1] as usize);
            for &i in &sel_rows[lo..hi] {
                let c = &mut cursor[i as usize];
                meas_by_row[*c as usize] = k as u32;
                *c += 1;
            }
        }

        // Table amortization break-even: per array row, the table build
        // costs 256·⌈N/8⌉ adds; each measurement gathered through it
        // saves ~(b − ⌈N/8⌉) adds over the direct index gather.
        let direct_cost: usize = (0..k_count)
            .map(|k| {
                let a = (sel_rows_off[k + 1] - sel_rows_off[k]) as usize;
                let b = (sel_cols_off[k + 1] - sel_cols_off[k]) as usize;
                a * b
            })
            .sum();
        let table_cost = m * 256 * col_groups + sel_rows.len() * (col_groups + 1);
        let apply_tables = table_cost < direct_cost;

        XorMeasurement {
            rows_m,
            cols_n,
            patterns,
            sel_rows,
            sel_rows_off,
            sel_cols,
            sel_cols_off,
            meas_by_row,
            meas_by_row_off,
            col_group_masks,
            row_meas_masks,
            col_meas_masks,
            apply_tables,
        }
    }

    /// Array height M.
    pub fn array_rows(&self) -> usize {
        self.rows_m
    }

    /// Approximate heap footprint in bytes (for cache accounting):
    /// the bit patterns plus every precompiled index list and mask
    /// table.
    #[must_use]
    pub fn bytes(&self) -> usize {
        let pattern_words = (self.rows_m + self.cols_n).div_ceil(64);
        self.patterns.len() * pattern_words * std::mem::size_of::<u64>()
            + (self.sel_rows.len()
                + self.sel_rows_off.len()
                + self.sel_cols.len()
                + self.sel_cols_off.len()
                + self.meas_by_row.len()
                + self.meas_by_row_off.len())
                * std::mem::size_of::<u32>()
            + self.col_group_masks.len()
            + self.row_meas_masks.len()
            + self.col_meas_masks.len()
    }

    /// Array width N.
    pub fn array_cols(&self) -> usize {
        self.cols_n
    }

    /// Row-selection bit `S_i` of measurement `k`.
    #[inline]
    pub fn row_bit(&self, k: usize, i: usize) -> bool {
        assert!(i < self.rows_m, "row index out of range");
        self.patterns[k].get(i)
    }

    /// Column-selection bit `S_j` of measurement `k`.
    #[inline]
    pub fn col_bit(&self, k: usize, j: usize) -> bool {
        assert!(j < self.cols_n, "column index out of range");
        self.patterns[k].get(self.rows_m + j)
    }

    /// `true` iff pixel `(i, j)` contributes to measurement `k`.
    #[inline]
    pub fn selected(&self, k: usize, i: usize, j: usize) -> bool {
        self.row_bit(k, i) ^ self.col_bit(k, j)
    }

    /// The raw `(M+N)`-bit pattern of measurement `k`.
    pub fn pattern(&self, k: usize) -> &BitVec {
        &self.patterns[k]
    }

    /// The precompiled selected row indices of measurement `k`.
    pub fn selected_rows(&self, k: usize) -> &[u32] {
        &self.sel_rows[self.sel_rows_off[k] as usize..self.sel_rows_off[k + 1] as usize]
    }

    /// The precompiled selected column indices of measurement `k`.
    pub fn selected_cols(&self, k: usize) -> &[u32] {
        &self.sel_cols[self.sel_cols_off[k] as usize..self.sel_cols_off[k + 1] as usize]
    }

    /// Number of selected row bits / column bits in measurement `k`
    /// (O(1) from the precompiled offsets).
    pub fn pattern_weights(&self, k: usize) -> (usize, usize) {
        (self.selected_rows(k).len(), self.selected_cols(k).len())
    }

    /// Factorized forward application; `scratch` holds the row sums,
    /// column sums, and (on the table path) the per-row subset tables.
    // tidy:alloc-free
    fn apply_factorized(&self, x: &[f64], y: &mut [f64], scratch: &mut Vec<f64>) {
        let (m, n) = (self.rows_m, self.cols_n);
        let col_groups = n.div_ceil(8);
        let table_len = if self.apply_tables {
            256 * col_groups
        } else {
            0
        };
        scratch.resize(m + n + table_len, 0.0);
        let (row_sums, rest) = scratch.split_at_mut(m);
        let (col_sums, tables) = rest.split_at_mut(n);
        col_sums.fill(0.0);
        for (r, row) in row_sums.iter_mut().zip(x.chunks_exact(n)) {
            *r = row.iter().sum();
            for (c, &v) in col_sums.iter_mut().zip(row) {
                *c += v;
            }
        }
        // Column-sum part: y_k ← Σ_{j∈C_k} C_j.
        for (k, yk) in y.iter_mut().enumerate() {
            *yk = self
                .selected_cols(k)
                .iter()
                .map(|&j| col_sums[j as usize])
                .sum();
        }
        if self.apply_tables {
            // Row-major: build row i's subset tables once, then serve
            // every measurement that selects row i with one lookup per
            // column group.
            for (i, row) in x.chunks_exact(n).enumerate() {
                let meas = &self.meas_by_row
                    [self.meas_by_row_off[i] as usize..self.meas_by_row_off[i + 1] as usize];
                if meas.is_empty() {
                    continue;
                }
                for (g, vals) in row.chunks(8).enumerate() {
                    subset_sums(vals, &mut tables[g * 256..(g + 1) * 256]);
                }
                let ri = row_sums[i];
                for &k in meas {
                    let masks = &self.col_group_masks
                        [k as usize * col_groups..(k as usize + 1) * col_groups];
                    let t: f64 = masks
                        .iter()
                        .enumerate()
                        .map(|(g, &mask)| tables[g * 256 + mask as usize])
                        .sum();
                    y[k as usize] += ri - 2.0 * t;
                }
            }
        } else {
            // Direct gather over the precompiled index lists.
            for (k, yk) in y.iter_mut().enumerate() {
                let cols = self.selected_cols(k);
                for &i in self.selected_rows(k) {
                    let row = &x[i as usize * n..(i as usize + 1) * n];
                    let t: f64 = cols.iter().map(|&j| row[j as usize]).sum();
                    *yk += row_sums[i as usize] - 2.0 * t;
                }
            }
        }
    }

    /// Factorized adjoint: `x_ij = P_i + Q_j − 2·Σ_k y_k r_ki c_kj`,
    /// with the cross term evaluated per group of eight measurements
    /// through one subset-sum table of their `y` values.
    // tidy:alloc-free
    fn adjoint_factorized(&self, y: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        let (m, n) = (self.rows_m, self.cols_n);
        scratch.resize(256 + m + n, 0.0);
        let (table, rest) = scratch.split_at_mut(256);
        let (p, q) = rest.split_at_mut(m);
        p.fill(0.0);
        q.fill(0.0);
        x.fill(0.0);
        for (g, ys) in y.chunks(8).enumerate() {
            if ys.iter().all(|&v| v == 0.0) {
                continue;
            }
            subset_sums(ys, table);
            let gammas = &self.col_meas_masks[g * n..(g + 1) * n];
            for (qj, &gm) in q.iter_mut().zip(gammas) {
                *qj += table[gm as usize];
            }
            let rhos = &self.row_meas_masks[g * m..(g + 1) * m];
            for (i, &rho) in rhos.iter().enumerate() {
                if rho == 0 {
                    continue;
                }
                p[i] += table[rho as usize];
                let row = &mut x[i * n..(i + 1) * n];
                for (xv, &gm) in row.iter_mut().zip(gammas) {
                    *xv -= 2.0 * table[(rho & gm) as usize];
                }
            }
        }
        for (row, &pi) in x.chunks_exact_mut(n).zip(p.iter()) {
            for (xv, &qj) in row.iter_mut().zip(q.iter()) {
                *xv += pi + qj;
            }
        }
    }
}

impl LinearOperator for XorMeasurement {
    fn rows(&self) -> usize {
        self.patterns.len()
    }

    fn cols(&self) -> usize {
        self.rows_m * self.cols_n
    }

    // tidy:alloc-free
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "input length mismatch");
        assert_eq!(y.len(), self.rows(), "output length mismatch");
        SCRATCH.with_borrow_mut(|scratch| self.apply_factorized(x, y, scratch));
    }

    // tidy:alloc-free
    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.rows(), "input length mismatch");
        assert_eq!(x.len(), self.cols(), "output length mismatch");
        SCRATCH.with_borrow_mut(|scratch| self.adjoint_factorized(y, x, scratch));
    }

    fn column_into(&self, p: usize, out: &mut [f64]) {
        assert!(p < self.cols(), "column {p} out of range");
        assert_eq!(out.len(), self.rows(), "output length mismatch");
        let (i, j) = (p / self.cols_n, p % self.cols_n);
        for (k, o) in out.iter_mut().enumerate() {
            *o = if self.selected(k, i, j) { 1.0 } else { 0.0 };
        }
    }
}

impl SelectionMeasurement for XorMeasurement {
    fn mask(&self, k: usize) -> BitVec {
        assert!(k < self.patterns.len(), "row {k} out of range");
        let (m, n) = (self.rows_m, self.cols_n);
        let p = &self.patterns[k];
        BitVec::from_bools((0..m * n).map(|px| {
            let (i, j) = (px / n, px % n);
            p.get(i) ^ p.get(m + j)
        }))
    }

    fn ones_in_row(&self, k: usize) -> usize {
        // |{(i,j): r_i ⊕ c_j}| = a(N−b) + (M−a)b with a row-ones, b col-ones.
        let (a, b) = self.pattern_weights(k);
        a * (self.cols_n - b) + (self.rows_m - a) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::adjoint_mismatch;
    use tepics_ca::{CaSource, ElementaryRule, LfsrSource};
    use tepics_util::SplitMix64;

    fn sample(k: usize) -> XorMeasurement {
        let mut src = CaSource::new(12 + 10, 5, ElementaryRule::RULE_30, 40, 1);
        XorMeasurement::from_source(12, 10, &mut src, k)
    }

    /// Brute-force reference: the defining selected-pixel sums.
    fn bruteforce_apply(m: &XorMeasurement, x: &[f64]) -> Vec<f64> {
        let (rows, cols) = (m.array_rows(), m.array_cols());
        (0..m.rows())
            .map(|k| {
                let mut acc = 0.0;
                for i in 0..rows {
                    for j in 0..cols {
                        if m.selected(k, i, j) {
                            acc += x[i * cols + j];
                        }
                    }
                }
                acc
            })
            .collect()
    }

    #[test]
    fn selected_matches_mask_and_counts() {
        let m = sample(15);
        for k in 0..15 {
            let mask = m.mask(k);
            for i in 0..12 {
                for j in 0..10 {
                    assert_eq!(mask.get(i * 10 + j), m.selected(k, i, j));
                }
            }
            assert_eq!(m.ones_in_row(k), mask.count_ones());
        }
    }

    #[test]
    fn precompiled_index_lists_match_pattern_bits() {
        let m = sample(17);
        for k in 0..17 {
            let rows: Vec<u32> = (0..12u32).filter(|&i| m.row_bit(k, i as usize)).collect();
            let cols: Vec<u32> = (0..10u32).filter(|&j| m.col_bit(k, j as usize)).collect();
            assert_eq!(m.selected_rows(k), rows.as_slice(), "rows of {k}");
            assert_eq!(m.selected_cols(k), cols.as_slice(), "cols of {k}");
            assert_eq!(m.pattern_weights(k), (rows.len(), cols.len()));
        }
    }

    #[test]
    fn xor_guarantees_half_selection_on_balanced_patterns() {
        // With a=M/2 row bits and b=N/2 col bits set, exactly half the
        // pixels are selected: a(N−b)+(M−a)b = MN/2.
        let mut p = BitVec::zeros(8 + 8);
        for i in 0..4 {
            p.set(i, true); // 4 of 8 row bits
            p.set(8 + i, true); // 4 of 8 col bits
        }
        let m = XorMeasurement::from_patterns(8, 8, vec![p]);
        assert_eq!(m.ones_in_row(0), 32);
    }

    #[test]
    fn all_zero_pattern_selects_nothing() {
        let m = XorMeasurement::from_patterns(4, 4, vec![BitVec::zeros(8)]);
        assert_eq!(m.ones_in_row(0), 0);
        let y = m.apply_vec(&[1.0; 16]);
        assert_eq!(y[0], 0.0);
    }

    #[test]
    fn all_one_pattern_also_selects_nothing() {
        // r_i ⊕ c_j = 0 when both are 1: the XOR strategy's blind spot.
        let m = XorMeasurement::from_patterns(4, 4, vec![BitVec::ones(8)]);
        assert_eq!(m.ones_in_row(0), 0);
        let y = m.apply_vec(&[1.0; 16]);
        assert!(y[0].abs() < 1e-12);
    }

    #[test]
    fn apply_matches_bruteforce() {
        let m = sample(10);
        let mut rng = SplitMix64::new(2);
        let x: Vec<f64> = (0..120).map(|_| rng.next_f64()).collect();
        let y = m.apply_vec(&x);
        let expected = bruteforce_apply(&m, &x);
        for (k, (&yk, &ek)) in y.iter().zip(&expected).enumerate() {
            assert!((yk - ek).abs() < 1e-9, "row {k}");
        }
    }

    #[test]
    fn apply_matches_bruteforce_across_geometries() {
        // Property: the factorized fast paths equal the brute-force
        // selected() sums to ≤1e-10 (relative) at several geometries —
        // odd sizes, single row/column, column counts beyond one mask
        // word, and measurement counts off the group-of-eight grid.
        for &(rows, cols, k, seed) in &[
            (1usize, 1usize, 1usize, 1u64),
            (1, 13, 5, 2),
            (13, 1, 7, 3),
            (7, 9, 12, 4),
            (8, 8, 64, 5),
            (12, 10, 9, 6),
            (5, 70, 11, 7),   // columns span >8 groups
            (16, 16, 130, 8), // measurements span >16 groups
        ] {
            let mut src = CaSource::new(rows + cols, 3, ElementaryRule::RULE_30, 16, 1);
            let mut rng = SplitMix64::new(seed);
            let m = XorMeasurement::from_source(rows, cols, &mut src, k);
            let x: Vec<f64> = (0..rows * cols).map(|_| rng.next_f64() * 255.0).collect();
            let y = m.apply_vec(&x);
            let expected = bruteforce_apply(&m, &x);
            for (row, (&yk, &ek)) in y.iter().zip(&expected).enumerate() {
                assert!(
                    (yk - ek).abs() <= 1e-10 * ek.abs().max(1.0),
                    "{rows}×{cols} k={k} row {row}: {yk} vs {ek}"
                );
            }
            assert!(
                adjoint_mismatch(&m, 5, seed) < 1e-12,
                "{rows}×{cols} k={k} adjoint"
            );
        }
    }

    #[test]
    fn adjoint_matches_bruteforce_scatter() {
        let m = sample(21);
        let mut rng = SplitMix64::new(9);
        let y: Vec<f64> = (0..21).map(|_| rng.next_gaussian()).collect();
        let x = m.apply_adjoint_vec(&y);
        for i in 0..12 {
            for j in 0..10 {
                let expected: f64 = (0..21).filter(|&k| m.selected(k, i, j)).map(|k| y[k]).sum();
                let got = x[i * 10 + j];
                assert!(
                    (got - expected).abs() <= 1e-10 * expected.abs().max(1.0),
                    "pixel ({i},{j}): {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn adjoint_identity_holds() {
        let m = sample(25);
        assert!(adjoint_mismatch(&m, 10, 3) < 1e-12);
    }

    #[test]
    fn works_with_lfsr_source_too() {
        let mut src = LfsrSource::new(6 + 6, 16, 0xACE1);
        let m = XorMeasurement::from_source(6, 6, &mut src, 8);
        assert_eq!(m.rows(), 8);
        assert!(adjoint_mismatch(&m, 5, 4) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pattern length")]
    fn wrong_source_length_panics() {
        let mut src = LfsrSource::new(10, 16, 1);
        XorMeasurement::from_source(6, 6, &mut src, 2);
    }
}
