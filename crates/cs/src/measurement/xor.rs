//! The paper's XOR-structured full-frame measurement.
//!
//! Pixel `(i, j)` contributes to compressed sample `k` iff
//! `S_i(k) ⊕ S_j(k) = 1`, where the `M + N` selection bits come from the
//! CA ring around the array (Fig. 1 pixel XOR gate + Fig. 2 floorplan).
//! A row of Φ is therefore fully described by `M + N` bits instead of
//! `M·N` — the compression that makes on-chip generation feasible — and
//! this type keeps exactly that representation.

use super::SelectionMeasurement;
use crate::op::LinearOperator;
use tepics_ca::BitPatternSource;
use tepics_util::BitVec;

/// XOR-structured binary measurement over an `rows_m × cols_n` pixel
/// array (row-major pixel vectorization, `pixel = i · N + j`).
///
/// # Examples
///
/// ```
/// use tepics_ca::{CaSource, ElementaryRule};
/// use tepics_cs::{LinearOperator, XorMeasurement};
///
/// let mut src = CaSource::new(16 + 16, 9, ElementaryRule::RULE_30, 64, 1);
/// let phi = XorMeasurement::from_source(16, 16, &mut src, 40);
/// assert_eq!(phi.rows(), 40);
/// assert_eq!(phi.cols(), 256);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorMeasurement {
    rows_m: usize,
    cols_n: usize,
    /// One `(M + N)`-bit pattern per measurement: bits `0..M` are row
    /// selections, bits `M..M+N` column selections.
    patterns: Vec<BitVec>,
}

impl XorMeasurement {
    /// Builds a measurement by drawing `k` patterns from a source whose
    /// `pattern_len` is `rows_m + cols_n`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero, `k == 0`, or the source pattern
    /// length does not equal `rows_m + cols_n`.
    pub fn from_source<S: BitPatternSource + ?Sized>(
        rows_m: usize,
        cols_n: usize,
        source: &mut S,
        k: usize,
    ) -> Self {
        assert!(
            rows_m > 0 && cols_n > 0,
            "array dimensions must be positive"
        );
        assert!(k > 0, "need at least one measurement");
        assert_eq!(
            source.pattern_len(),
            rows_m + cols_n,
            "source pattern length {} != M+N = {}",
            source.pattern_len(),
            rows_m + cols_n
        );
        let patterns = (0..k).map(|_| source.next_pattern()).collect();
        XorMeasurement {
            rows_m,
            cols_n,
            patterns,
        }
    }

    /// Builds a measurement from explicit `(M+N)`-bit patterns.
    ///
    /// # Panics
    ///
    /// Panics on empty or wrong-length patterns.
    pub fn from_patterns(rows_m: usize, cols_n: usize, patterns: Vec<BitVec>) -> Self {
        assert!(
            rows_m > 0 && cols_n > 0,
            "array dimensions must be positive"
        );
        assert!(!patterns.is_empty(), "need at least one pattern");
        for (k, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), rows_m + cols_n, "pattern {k} has wrong length");
        }
        XorMeasurement {
            rows_m,
            cols_n,
            patterns,
        }
    }

    /// Array height M.
    pub fn array_rows(&self) -> usize {
        self.rows_m
    }

    /// Array width N.
    pub fn array_cols(&self) -> usize {
        self.cols_n
    }

    /// Row-selection bit `S_i` of measurement `k`.
    #[inline]
    pub fn row_bit(&self, k: usize, i: usize) -> bool {
        assert!(i < self.rows_m, "row index out of range");
        self.patterns[k].get(i)
    }

    /// Column-selection bit `S_j` of measurement `k`.
    #[inline]
    pub fn col_bit(&self, k: usize, j: usize) -> bool {
        assert!(j < self.cols_n, "column index out of range");
        self.patterns[k].get(self.rows_m + j)
    }

    /// `true` iff pixel `(i, j)` contributes to measurement `k`.
    #[inline]
    pub fn selected(&self, k: usize, i: usize, j: usize) -> bool {
        self.row_bit(k, i) ^ self.col_bit(k, j)
    }

    /// The raw `(M+N)`-bit pattern of measurement `k`.
    pub fn pattern(&self, k: usize) -> &BitVec {
        &self.patterns[k]
    }

    /// Number of selected row bits / column bits in measurement `k`.
    pub fn pattern_weights(&self, k: usize) -> (usize, usize) {
        let p = &self.patterns[k];
        let a = (0..self.rows_m).filter(|&i| p.get(i)).count();
        let b = (self.rows_m..self.rows_m + self.cols_n)
            .filter(|&i| p.get(i))
            .count();
        (a, b)
    }
}

impl LinearOperator for XorMeasurement {
    fn rows(&self) -> usize {
        self.patterns.len()
    }

    fn cols(&self) -> usize {
        self.rows_m * self.cols_n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "input length mismatch");
        assert_eq!(y.len(), self.rows(), "output length mismatch");
        let (m, n) = (self.rows_m, self.cols_n);
        // Row sums are shared across measurements.
        let row_sums: Vec<f64> = (0..m).map(|i| x[i * n..(i + 1) * n].iter().sum()).collect();
        let mut sel_cols = Vec::with_capacity(n);
        for (k, pattern) in self.patterns.iter().enumerate() {
            sel_cols.clear();
            sel_cols.extend((0..n).filter(|&j| pattern.get(m + j)));
            let mut acc = 0.0;
            for i in 0..m {
                let row = &x[i * n..(i + 1) * n];
                // T_i = Σ_{j selected} x_ij.
                let t: f64 = sel_cols.iter().map(|&j| row[j]).sum();
                acc += if pattern.get(i) { row_sums[i] - t } else { t };
            }
            y[k] = acc;
        }
    }

    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.rows(), "input length mismatch");
        assert_eq!(x.len(), self.cols(), "output length mismatch");
        let (m, n) = (self.rows_m, self.cols_n);
        x.fill(0.0);
        let mut sel = Vec::with_capacity(n);
        let mut unsel = Vec::with_capacity(n);
        for (k, pattern) in self.patterns.iter().enumerate() {
            let yk = y[k];
            if yk == 0.0 {
                continue;
            }
            sel.clear();
            unsel.clear();
            for j in 0..n {
                if pattern.get(m + j) {
                    sel.push(j);
                } else {
                    unsel.push(j);
                }
            }
            for i in 0..m {
                let row = &mut x[i * n..(i + 1) * n];
                // Row bit set → contributes where column bit is 0.
                let cols = if pattern.get(i) { &unsel } else { &sel };
                for &j in cols {
                    row[j] += yk;
                }
            }
        }
    }
}

impl SelectionMeasurement for XorMeasurement {
    fn mask(&self, k: usize) -> BitVec {
        assert!(k < self.patterns.len(), "row {k} out of range");
        let (m, n) = (self.rows_m, self.cols_n);
        let p = &self.patterns[k];
        BitVec::from_bools((0..m * n).map(|px| {
            let (i, j) = (px / n, px % n);
            p.get(i) ^ p.get(m + j)
        }))
    }

    fn ones_in_row(&self, k: usize) -> usize {
        // |{(i,j): r_i ⊕ c_j}| = a(N−b) + (M−a)b with a row-ones, b col-ones.
        let (a, b) = self.pattern_weights(k);
        a * (self.cols_n - b) + (self.rows_m - a) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::adjoint_mismatch;
    use tepics_ca::{CaSource, ElementaryRule, LfsrSource};

    fn sample(k: usize) -> XorMeasurement {
        let mut src = CaSource::new(12 + 10, 5, ElementaryRule::RULE_30, 40, 1);
        XorMeasurement::from_source(12, 10, &mut src, k)
    }

    #[test]
    fn selected_matches_mask_and_counts() {
        let m = sample(15);
        for k in 0..15 {
            let mask = m.mask(k);
            for i in 0..12 {
                for j in 0..10 {
                    assert_eq!(mask.get(i * 10 + j), m.selected(k, i, j));
                }
            }
            assert_eq!(m.ones_in_row(k), mask.count_ones());
        }
    }

    #[test]
    fn xor_guarantees_half_selection_on_balanced_patterns() {
        // With a=M/2 row bits and b=N/2 col bits set, exactly half the
        // pixels are selected: a(N−b)+(M−a)b = MN/2.
        let mut p = BitVec::zeros(8 + 8);
        for i in 0..4 {
            p.set(i, true); // 4 of 8 row bits
            p.set(8 + i, true); // 4 of 8 col bits
        }
        let m = XorMeasurement::from_patterns(8, 8, vec![p]);
        assert_eq!(m.ones_in_row(0), 32);
    }

    #[test]
    fn all_zero_pattern_selects_nothing() {
        let m = XorMeasurement::from_patterns(4, 4, vec![BitVec::zeros(8)]);
        assert_eq!(m.ones_in_row(0), 0);
        let y = m.apply_vec(&[1.0; 16]);
        assert_eq!(y[0], 0.0);
    }

    #[test]
    fn all_one_pattern_also_selects_nothing() {
        // r_i ⊕ c_j = 0 when both are 1: the XOR strategy's blind spot.
        let m = XorMeasurement::from_patterns(4, 4, vec![BitVec::ones(8)]);
        assert_eq!(m.ones_in_row(0), 0);
    }

    #[test]
    fn apply_matches_bruteforce() {
        let m = sample(10);
        let mut rng = tepics_util::SplitMix64::new(2);
        let x: Vec<f64> = (0..120).map(|_| rng.next_f64()).collect();
        let y = m.apply_vec(&x);
        for (k, &yk) in y.iter().enumerate() {
            let mut expected = 0.0;
            for i in 0..12 {
                for j in 0..10 {
                    if m.selected(k, i, j) {
                        expected += x[i * 10 + j];
                    }
                }
            }
            assert!((yk - expected).abs() < 1e-9, "row {k}");
        }
    }

    #[test]
    fn adjoint_identity_holds() {
        let m = sample(25);
        assert!(adjoint_mismatch(&m, 10, 3) < 1e-12);
    }

    #[test]
    fn works_with_lfsr_source_too() {
        let mut src = LfsrSource::new(6 + 6, 16, 0xACE1);
        let m = XorMeasurement::from_source(6, 6, &mut src, 8);
        assert_eq!(m.rows(), 8);
        assert!(adjoint_mismatch(&m, 5, 4) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pattern length")]
    fn wrong_source_length_panics() {
        let mut src = LfsrSource::new(10, 16, 1);
        XorMeasurement::from_source(6, 6, &mut src, 2);
    }
}
