//! Dense per-row binary masks.

use super::{adjoint_masks, apply_masks, SelectionMeasurement};
use crate::op::LinearOperator;
use tepics_ca::BitPatternSource;
use tepics_util::{BitVec, SplitMix64};

/// A 0/1 measurement matrix stored as one explicit mask per row.
///
/// This is the representation for strategies that *could not* be
/// regenerated cheaply on chip (i.i.d. Bernoulli, thresholded Gaussian)
/// and for full-length LFSR/Hadamard patterns. Memory is `K × n` bits.
///
/// # Examples
///
/// ```
/// use tepics_cs::measurement::{DenseBinaryMeasurement, SelectionMeasurement};
/// use tepics_cs::LinearOperator;
///
/// let phi = DenseBinaryMeasurement::bernoulli(8, 32, 1, 0.5);
/// assert_eq!(phi.rows(), 8);
/// assert_eq!(phi.cols(), 32);
/// let ones = phi.ones_in_row(0);
/// assert!(ones > 0 && ones < 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBinaryMeasurement {
    n: usize,
    masks: Vec<BitVec>,
}

impl DenseBinaryMeasurement {
    /// Builds a measurement from explicit masks.
    ///
    /// # Panics
    ///
    /// Panics if `masks` is empty or any mask length differs from the
    /// first.
    pub fn from_masks(masks: Vec<BitVec>) -> Self {
        assert!(!masks.is_empty(), "need at least one measurement row");
        let n = masks[0].len();
        assert!(n > 0, "masks must be non-empty");
        for (k, m) in masks.iter().enumerate() {
            assert_eq!(m.len(), n, "mask {k} has inconsistent length");
        }
        DenseBinaryMeasurement { n, masks }
    }

    /// Draws `k` rows from a pattern source whose `pattern_len` equals
    /// the pixel count.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn from_source<S: BitPatternSource + ?Sized>(source: &mut S, k: usize) -> Self {
        assert!(k > 0, "need at least one measurement row");
        let masks = (0..k).map(|_| source.next_pattern()).collect();
        DenseBinaryMeasurement::from_masks(masks)
    }

    /// I.i.d. Bernoulli ensemble with `P(1) = density`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `n == 0`, or `density` outside `(0, 1)`.
    pub fn bernoulli(k: usize, n: usize, seed: u64, density: f64) -> Self {
        assert!(k > 0 && n > 0, "dimensions must be positive");
        assert!(
            density > 0.0 && density < 1.0,
            "density must be in (0,1), got {density}"
        );
        let mut rng = SplitMix64::new(seed);
        let masks = (0..k)
            .map(|_| BitVec::from_bools((0..n).map(|_| rng.next_f64() < density)))
            .collect();
        DenseBinaryMeasurement::from_masks(masks)
    }

    /// The paper's "simplest implementation": a standard normal draw per
    /// entry, thresholded to 0/1 (`1` iff `g > threshold`). With
    /// `threshold = 0` this is a balanced sub-Gaussian ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `n == 0`.
    pub fn thresholded_gaussian(k: usize, n: usize, seed: u64, threshold: f64) -> Self {
        assert!(k > 0 && n > 0, "dimensions must be positive");
        let mut rng = SplitMix64::new(seed);
        let masks = (0..k)
            .map(|_| BitVec::from_bools((0..n).map(|_| rng.next_gaussian() > threshold)))
            .collect();
        DenseBinaryMeasurement::from_masks(masks)
    }

    /// Borrow of all masks.
    pub fn masks(&self) -> &[BitVec] {
        &self.masks
    }
}

impl LinearOperator for DenseBinaryMeasurement {
    fn rows(&self) -> usize {
        self.masks.len()
    }

    fn cols(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        assert_eq!(y.len(), self.masks.len(), "output length mismatch");
        apply_masks(&self.masks, x, y);
    }

    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.masks.len(), "input length mismatch");
        assert_eq!(x.len(), self.n, "output length mismatch");
        adjoint_masks(&self.masks, y, x);
    }
}

impl SelectionMeasurement for DenseBinaryMeasurement {
    fn mask(&self, k: usize) -> BitVec {
        assert!(k < self.masks.len(), "row {k} out of range");
        self.masks[k].clone()
    }

    fn ones_in_row(&self, k: usize) -> usize {
        assert!(k < self.masks.len(), "row {k} out of range");
        self.masks[k].count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_density_is_respected() {
        let m = DenseBinaryMeasurement::bernoulli(50, 200, 3, 0.3);
        let total: usize = (0..50).map(|k| m.ones_in_row(k)).sum();
        let frac = total as f64 / (50.0 * 200.0);
        assert!((0.27..0.33).contains(&frac), "density {frac}");
    }

    #[test]
    fn thresholded_gaussian_zero_threshold_is_balanced() {
        let m = DenseBinaryMeasurement::thresholded_gaussian(50, 200, 4, 0.0);
        let total: usize = (0..50).map(|k| m.ones_in_row(k)).sum();
        let frac = total as f64 / (50.0 * 200.0);
        assert!((0.46..0.54).contains(&frac), "balance {frac}");
        // Positive threshold reduces density.
        let sparse = DenseBinaryMeasurement::thresholded_gaussian(50, 200, 4, 1.0);
        let total_sparse: usize = (0..50).map(|k| sparse.ones_in_row(k)).sum();
        assert!(total_sparse < total / 2);
    }

    #[test]
    fn apply_on_indicator_counts_mask() {
        let m = DenseBinaryMeasurement::bernoulli(10, 64, 7, 0.5);
        let y = m.apply_vec(&vec![1.0; 64]);
        for (k, &yk) in y.iter().enumerate() {
            assert_eq!(yk, m.ones_in_row(k) as f64);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = DenseBinaryMeasurement::bernoulli(5, 32, 11, 0.5);
        let b = DenseBinaryMeasurement::bernoulli(5, 32, 11, 0.5);
        assert_eq!(a, b);
        let c = DenseBinaryMeasurement::bernoulli(5, 32, 12, 0.5);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn ragged_masks_panic() {
        DenseBinaryMeasurement::from_masks(vec![BitVec::zeros(4), BitVec::zeros(5)]);
    }
}
