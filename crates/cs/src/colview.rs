//! Column-materialized operator views.
//!
//! Greedy solvers (OMP, CoSaMP) and the restricted least-squares passes
//! behind them touch an operator *column-wise*: extract the column of a
//! selected atom, take inner products against it, apply the operator
//! restricted to a small support. For matrix-free operators every one of
//! those touches costs a full `apply` — re-deriving the same columns
//! over and over. [`ColumnMatrix`] materializes all columns once
//! (column-major, so each column is a contiguous slice) and serves every
//! later touch as a gather.
//!
//! The view plugs into the operator stack through
//! [`LinearOperator::column_view`]: a [`ComposedOperator`] with an
//! attached view answers `column_view()` with it, and downstream
//! consumers (the greedy solvers' column extraction, the restricted
//! operator in `tepics-recovery`) switch to the materialized path when
//! one is present. Materialized columns are built by the *same*
//! [`column_into`](LinearOperator::column_into) computation the
//! column-free path runs, so column *extraction* through a view is
//! bit-identical to extraction without one; restricted `apply`/
//! `apply_adjoint` through a view reassociate floating-point sums and
//! may differ from the scatter path in the last bits (≤1e-10 relative —
//! the same contract as the factorized XOR paths).
//!
//! [`ComposedOperator`]: crate::ComposedOperator

use crate::op::LinearOperator;

/// A dense, column-major materialization of a linear operator.
///
/// `data[j·rows .. (j+1)·rows]` is column `j` (`A e_j`), so
/// [`ColumnMatrix::column`] is a contiguous borrow. Built once per
/// operator (typically memoized by the caller — the core crate's
/// `OperatorCache` keys views by operator and dictionary), shared via
/// `Arc` across sessions and batch workers.
///
/// # Examples
///
/// ```
/// use tepics_cs::colview::ColumnMatrix;
/// use tepics_cs::{DenseMatrix, LinearOperator};
///
/// let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let view = ColumnMatrix::from_operator(&a);
/// assert_eq!(view.column(1), &[2.0, 4.0]);
/// assert_eq!(view.apply_vec(&[1.0, 1.0]), a.apply_vec(&[1.0, 1.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: column `j` at `data[j*rows..(j+1)*rows]`.
    data: Vec<f64>,
}

impl ColumnMatrix {
    /// Materializes every column of `a` through
    /// [`LinearOperator::column_into`].
    ///
    /// Cost is `cols` forward applications — a one-time build meant to
    /// be memoized and amortized over many solves.
    ///
    /// # Panics
    ///
    /// Panics if `a` has zero rows or columns.
    pub fn from_operator<A: LinearOperator + ?Sized>(a: &A) -> Self {
        let (rows, cols) = (a.rows(), a.cols());
        assert!(rows > 0 && cols > 0, "degenerate operator");
        let mut data = vec![0.0; rows * cols];
        for (j, col) in data.chunks_exact_mut(rows).enumerate() {
            a.column_into(j, col);
        }
        ColumnMatrix { rows, cols, data }
    }

    /// Column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[inline]
    pub fn column(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column {j} out of range");
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Approximate heap footprint in bytes (for cache accounting).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl LinearOperator for ColumnMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(y.len(), self.rows, "output length mismatch");
        y.fill(0.0);
        for (&xj, col) in x.iter().zip(self.data.chunks_exact(self.rows)) {
            if xj != 0.0 {
                for (yi, &c) in y.iter_mut().zip(col) {
                    *yi += xj * c;
                }
            }
        }
    }

    fn apply_adjoint(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "input length mismatch");
        assert_eq!(x.len(), self.cols, "output length mismatch");
        for (xj, col) in x.iter_mut().zip(self.data.chunks_exact(self.rows)) {
            *xj = crate::op::dot(col, y);
        }
    }

    fn column_into(&self, j: usize, out: &mut [f64]) {
        out.copy_from_slice(self.column(j));
    }

    fn column_view(&self) -> Option<&ColumnMatrix> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMatrix;
    use crate::op::adjoint_mismatch;

    #[test]
    fn columns_match_operator_columns() {
        let a = DenseMatrix::from_fn(5, 7, |r, c| (r * 7 + c) as f64 - 10.0);
        let view = ColumnMatrix::from_operator(&a);
        for j in 0..7 {
            assert_eq!(view.column(j), a.column(j).as_slice(), "column {j}");
        }
    }

    #[test]
    fn apply_and_adjoint_match_source_operator() {
        let a = DenseMatrix::from_fn(6, 9, |r, c| ((r * 3 + c * 5) % 7) as f64 - 3.0);
        let view = ColumnMatrix::from_operator(&a);
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.25 - 1.0).collect();
        let y: Vec<f64> = (0..6).map(|i| 1.0 - i as f64 * 0.5).collect();
        let ax = view.apply_vec(&x);
        let want = a.apply_vec(&x);
        for (got, want) in ax.iter().zip(&want) {
            assert!((got - want).abs() < 1e-12);
        }
        let aty = view.apply_adjoint_vec(&y);
        let want = a.apply_adjoint_vec(&y);
        for (got, want) in aty.iter().zip(&want) {
            assert!((got - want).abs() < 1e-12);
        }
        assert!(adjoint_mismatch(&view, 5, 3) < 1e-12);
    }

    #[test]
    fn exposes_itself_as_column_view() {
        let a = DenseMatrix::identity(4);
        let view = ColumnMatrix::from_operator(&a);
        assert!(view.column_view().is_some());
        assert_eq!(view.bytes(), 16 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let view = ColumnMatrix::from_operator(&DenseMatrix::identity(2));
        view.column(2);
    }
}
