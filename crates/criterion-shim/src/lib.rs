//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The TEPICS build environment has no access to a crates registry, so the
//! workspace vendors this minimal, dependency-free re-implementation of the
//! slice of criterion's API that the `tepics-bench` bench targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It measures wall-clock time with [`std::time::Instant`], auto-calibrates
//! an iteration count against a small per-benchmark time budget, and prints
//! a `name … time:  [median]  thrpt: […]` line per benchmark. It does no
//! statistical analysis, produces no HTML reports, and ignores CLI flags
//! (which keeps `cargo bench -- --whatever` from failing). When the build
//! environment gains registry access, deleting this crate and pointing the
//! workspace `criterion` dependency at crates.io restores the real harness
//! with no source changes to the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark; tiny so `cargo bench` smoke runs stay
/// fast — this shim exists to keep bench targets compiling and runnable,
/// not to produce publishable numbers.
const TIME_BUDGET: Duration = Duration::from_millis(200);
/// Hard cap on timed iterations, so nanosecond-scale routines terminate.
const MAX_ITERS: u64 = 1_000_000;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; CLI flags are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<D: Display>(
        &mut self,
        id: D,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<D: Display>(&mut self, name: D) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Mirrors `Criterion::final_summary`; nothing to summarize here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in the printed report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<D: Display>(
        &mut self,
        id: D,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<D: Display, I: ?Sized>(
        &mut self,
        id: D,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Closes the group (no-op; reports are printed eagerly).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration pass: one untimed iteration, then estimate how many
        // fit in the budget.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let budget_iters = (TIME_BUDGET.as_nanos() / once.as_nanos()).max(1);
        let iters = u64::try_from(budget_iters)
            .unwrap_or(MAX_ITERS)
            .min(MAX_ITERS);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Throughput annotation for a benchmark, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark id combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            name: name.to_string(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Re-export so benches may `use criterion::black_box` as with the real
/// crate (pre-0.5 style).
pub use std::hint::black_box;

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<48} (no iterations recorded)");
        return;
    }
    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!("{name:<48} time: [{}]", format_ns(per_iter_ns));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let rate = count / (per_iter_ns / 1e9);
        line.push_str(&format!("  thrpt: [{rate:.3e} {unit}]"));
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("rule30", 64).to_string(), "rule30/64");
    }
}
