//! Integration: the resilient (version-3) wire path under fire.
//!
//! The acceptance properties of the resilience work, asserted end to
//! end through the public facade:
//!
//! * a v3 tiled stream at the 0.1%-byte corruption class decodes to
//!   completion with ≥90% of its frames recovered and no panics;
//! * a clean v3 stream decodes bit-identical to the compact (v1/v2)
//!   container carrying the same records;
//! * delta mode re-anchors after a frame lost to corruption, and the
//!   re-anchored frame matches a fresh full decode bit for bit;
//! * one corrupt stream in a batch degrades only itself;
//! * 2000 rounds of seeded hostile mutations never panic the v3 parser
//!   and never stop it terminating.
//!
//! Every fault is driven by a seeded [`FaultInjector`], so any failure
//! replays exactly from the assertion message's seed.

use tepics::core::stream::{
    StreamParser, RESILIENT_HEADER_BYTES, RESILIENT_RECORD_PREFIX_BYTES,
    RESILIENT_TILED_HEADER_BYTES, SYNC_INTERVAL,
};
use tepics::core::FaultInjector;
use tepics::prelude::*;

fn tiled_imager(side: usize, seed: u64) -> CompressiveImager {
    CompressiveImager::builder_for(FrameGeometry::new(side, side))
        .tiling(TileConfig::new(16).overlap(4))
        .ratio(0.35)
        .seed(seed)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
}

fn untiled_imager(side: usize, seed: u64) -> CompressiveImager {
    CompressiveImager::builder(side, side)
        .ratio(0.35)
        .seed(seed)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
}

/// Captures `n` frames into a v3 stream, returning the bytes and the
/// per-capture records (for byte-offset arithmetic and replays).
fn resilient_stream(
    imager: CompressiveImager,
    n: usize,
    scene_seed: u64,
) -> (Vec<u8>, Vec<Vec<CompressedFrame>>) {
    let geometry = imager.geometry();
    let (w, h) = (geometry.width(), geometry.height());
    let mut enc = EncodeSession::with_profile(imager, WireProfile::Resilient).unwrap();
    let mut captures = Vec::new();
    for i in 0..n {
        let scene = Scene::gaussian_blobs(3).render(w, h, scene_seed + i as u64);
        captures.push(enc.capture(&scene).unwrap());
    }
    (enc.into_bytes(), captures)
}

/// Drains a session over `bytes`, keeping everything decoded before
/// any poisoned tail.
fn decode_lenient(bytes: &[u8], policy: ErasurePolicy) -> (Vec<DecodedFrame>, DecodeReport) {
    let mut dec = DecodeSession::new();
    dec.erasure_policy(policy);
    let mut frames = dec.push_bytes(bytes).unwrap_or_default();
    frames.extend(dec.finish().unwrap_or_default());
    (frames, dec.report())
}

/// The headline acceptance: 0.1% byte corruption (header protected, as
/// on a handshake-negotiated link) must leave ≥90% of frames
/// recoverable, across several independent fault seeds.
#[test]
fn tiled_stream_survives_the_acceptance_corruption_rate() {
    let (clean, captures) = resilient_stream(tiled_imager(32, 0xACCE), 10, 500);
    let n_frames = captures.len();
    for fault_seed in [1u64, 2] {
        let mut dirty = clean.clone();
        // 0.1% of bytes hit ⇒ per-bit rate 0.001/8.
        let flipped = FaultInjector::new(fault_seed).flip_bits_after(
            &mut dirty,
            RESILIENT_TILED_HEADER_BYTES,
            0.001 / 8.0,
        );
        let (frames, report) = decode_lenient(&dirty, ErasurePolicy::NeighborBlend);
        let recovered = frames.len() as f64 / n_frames as f64;
        assert!(
            recovered >= 0.9,
            "fault seed {fault_seed}: {flipped} flips recovered only {:.0}% \
             ({} corrupt events, {} bytes skipped)",
            recovered * 100.0,
            report.corrupt_events,
            report.bytes_skipped,
        );
        // The report's ledger must cover every frame of the stream.
        assert_eq!(
            report.frames_seen(),
            n_frames,
            "fault seed {fault_seed}: recovered + degraded + lost must account for all frames"
        );
    }
}

/// A clean v3 container is pure overhead: the same records decode
/// bit-identical to the v1 (untiled) and v2 (tiled) compact containers.
#[test]
fn clean_v3_decodes_bit_identical_to_compact_containers() {
    for tiled in [false, true] {
        let im = if tiled {
            tiled_imager(32, 0x1DE7)
        } else {
            untiled_imager(24, 0x1DE7)
        };
        let (v3_bytes, captures) = resilient_stream(im.clone(), 4, 80);
        let mut compact = EncodeSession::new(im).unwrap();
        for records in &captures {
            for r in records {
                compact.push_frame(r).unwrap();
            }
        }
        assert_eq!(compact.wire_version(), if tiled { 2 } else { 1 });

        let (v3, v3_report) = decode_lenient(&v3_bytes, ErasurePolicy::default());
        let (compact_frames, _) = decode_lenient(&compact.into_bytes(), ErasurePolicy::default());
        assert_eq!(v3.len(), 4);
        assert_eq!(v3.len(), compact_frames.len());
        assert_eq!(v3_report.corrupt_events, 0);
        assert_eq!(v3_report.frames_degraded, 0);
        for (a, b) in v3.iter().zip(&compact_frames) {
            assert_eq!(a.index, b.index);
            assert_eq!(
                a.reconstruction, b.reconstruction,
                "tiled={tiled} frame {}: v3 decode diverged from compact",
                a.index
            );
            assert_eq!(a.erased_tiles, 0);
        }
    }
}

/// Byte span of untiled v3 record `i` (sync words every
/// `SYNC_INTERVAL` records, fixed record length).
fn record_span(rec_len: usize, i: usize) -> (usize, usize) {
    let start = RESILIENT_HEADER_BYTES + 4 * (i / SYNC_INTERVAL + 1) + i * rec_len;
    (start, start + rec_len)
}

/// Delta mode across a gap: excising one record from a v3 stream loses
/// that frame, and the decoder re-anchors — the first frame after the
/// gap is re-keyed and matches a fresh full decode bit for bit.
#[test]
fn delta_decode_reanchors_across_a_dropped_frame() {
    let im = untiled_imager(24, 0xDE17A);
    let (clean, captures) = resilient_stream(im, 5, 300);
    let rec_len = RESILIENT_RECORD_PREFIX_BYTES
        + (captures[0][0].sample_count() * captures[0][0].header.sample_bits as usize).div_ceil(8)
        + 1;

    // Drop frame 2 entirely (mid-stream, not on a sync boundary).
    let (start, end) = record_span(rec_len, 2);
    let mut gapped = clean.clone();
    gapped.drain(start..end);

    let mut dec = DecodeSession::new();
    dec.delta_mode(25, 0);
    let decoded = dec.push_bytes(&gapped).unwrap();
    let report = dec.report();
    assert_eq!(
        decoded.iter().map(|d| d.index).collect::<Vec<_>>(),
        vec![0, 1, 3, 4],
        "frame 2 lost, indices preserved from sequence numbers"
    );
    assert_eq!(report.frames_lost, 1);
    assert_eq!(report.reanchors, 1, "one re-anchor at the gap");
    assert!(decoded[2].is_key, "first frame after the gap is re-keyed");

    // The re-anchored frame must equal a fresh, gap-free full decode of
    // the same record — no delta residue from before the gap.
    let mut fresh = DecodeSession::new();
    let reference = fresh.push_frame(&captures[3][0]).unwrap();
    assert_eq!(
        decoded[2].reconstruction, reference.reconstruction,
        "re-anchored decode must be bit-identical to a fresh decode"
    );
}

/// Batch isolation end to end: one corrupted v3 stream among clean
/// ones degrades only itself, and the outcome is thread-count
/// invariant.
#[test]
fn corrupt_v3_stream_degrades_only_itself_in_a_batch() {
    let im = tiled_imager(32, 0xBA7C);
    let streams: Vec<Vec<u8>> = (0..3)
        .map(|s| resilient_stream(im.clone(), 3, 700 + s * 11).0)
        .collect();
    let mut dirty = streams.clone();
    // Hammer the middle stream's record stretch hard enough to corrupt
    // records without killing the (unprotected-in-this-test) header.
    FaultInjector::new(77).flip_bits_after(&mut dirty[1], RESILIENT_TILED_HEADER_BYTES, 0.002);

    let serial = BatchRunner::with_threads(1).decode_streams(&dirty);
    let parallel = BatchRunner::with_threads(8).decode_streams(&dirty);
    assert_eq!(
        serial, parallel,
        "stream outcomes must be thread-count invariant"
    );
    assert_eq!(
        serial.failed_streams(),
        0,
        "v3 corruption degrades, not fails"
    );
    assert_eq!(serial.degraded_streams(), 1);
    assert_eq!(serial.clean_streams(), 2);
    let outcomes = &serial.outcomes;
    assert!(outcomes[1].is_degraded());
    assert!(outcomes[1].report.corrupt_events > 0);
    for i in [0, 2] {
        assert!(!outcomes[i].is_degraded(), "stream {i} must stay clean");
        assert_eq!(outcomes[i].frames.len(), 3);
        assert_eq!(outcomes[i].report.corrupt_events, 0);
    }
}

/// 2000 rounds of seeded hostile mutation against the v3 parser: any
/// mix of bit flips, burst erasures, truncation, duplication, and
/// adversarial re-chunking. The parser must never panic and must
/// always terminate (drain to `Ok(None)` or a sticky error in bounded
/// steps).
#[test]
fn v3_parser_survives_two_thousand_hostile_mutations() {
    let (clean, captures) = resilient_stream(untiled_imager(16, 0xF422), 6, 900);
    let n_frames = captures.len();

    for round in 0..2000u64 {
        let mut f = FaultInjector::new(round);
        let mut bytes = clean.clone();
        // Deterministic fault mix per round.
        match round % 5 {
            0 => {
                f.flip_bits(&mut bytes, 0.003);
            }
            1 => {
                f.burst_erase(&mut bytes, 64);
            }
            2 => {
                f.truncate(&mut bytes, 0);
            }
            3 => {
                f.duplicate_range(&mut bytes, 48);
            }
            _ => {
                f.flip_bits_after(&mut bytes, RESILIENT_HEADER_BYTES, 0.01);
                f.burst_erase(&mut bytes, 32);
            }
        }
        let chunks = f.rechunk(&bytes, 1 + (round as usize % 37));

        let mut parser = StreamParser::new();
        let mut drained = 0usize;
        // Termination bound: every event consumes ≥1 buffered byte, so
        // the total event count can never exceed the byte count (plus
        // one per frame for bookkeeping slack).
        let budget = bytes.len() + n_frames + 16;
        for chunk in &chunks {
            parser.push_bytes(chunk);
            loop {
                match parser.next_event() {
                    Ok(Some(_)) => {
                        drained += 1;
                        assert!(
                            drained <= budget,
                            "round {round}: parser emitted {drained} events over a \
                             {}-byte stream — runaway loop",
                            bytes.len()
                        );
                    }
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
            if parser.is_malformed() {
                break;
            }
        }
    }
}

/// The same hostile rounds through the full session (reconstruction
/// included) on a smaller budget: no panic, and the report's frame
/// ledger stays consistent. Complements the parser fuzz above with the
/// stitch/erasure layer.
#[test]
fn session_survives_hostile_mutations_with_consistent_reports() {
    let (clean, captures) = resilient_stream(tiled_imager(32, 0x5E55), 4, 1300);
    let n_frames = captures.len();
    for round in 0..10u64 {
        let mut f = FaultInjector::new(0xBAD0 + round);
        let mut bytes = clean.clone();
        match round % 4 {
            0 => {
                f.flip_bits_after(&mut bytes, RESILIENT_TILED_HEADER_BYTES, 0.002);
            }
            1 => {
                f.burst_erase(&mut bytes, 200);
            }
            2 => {
                f.truncate(&mut bytes, RESILIENT_TILED_HEADER_BYTES);
            }
            _ => {
                f.duplicate_range(&mut bytes, 100);
            }
        }
        // Rotate the erasure policy round to round, so every policy
        // meets every fault class across the sweep.
        let policy = match round % 3 {
            0 => ErasurePolicy::Strict,
            1 => ErasurePolicy::FlaggedZero,
            _ => ErasurePolicy::NeighborBlend,
        };
        let (frames, report) = decode_lenient(&bytes, policy);
        assert!(
            frames.len() <= report.frames_seen().max(n_frames),
            "round {round} {policy:?}: more frames out than the ledger accounts for"
        );
        for d in &frames {
            let (w, h) = (
                d.reconstruction.code_image().width(),
                d.reconstruction.code_image().height(),
            );
            assert_eq!((w, h), (32, 32), "round {round}: malformed frame geometry");
        }
    }
}
