//! Integration: reconstruction-quality floors across the scene suite.
//!
//! These are regression rails, not benchmarks: each scene/dictionary
//! pair must stay above a PSNR floor chosen ~3 dB below the measured
//! value at the time of writing, so algorithmic regressions trip them
//! while noise-level drift does not.

use tepics::core::pipeline::evaluate;
use tepics::prelude::*;

fn imager(side: usize, ratio: f64) -> CompressiveImager {
    CompressiveImager::builder(side, side)
        .ratio(ratio)
        .seed(0xF100D)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
}

#[test]
fn psnr_floors_per_scene_at_r_040() {
    let im = imager(32, 0.40);
    // Measured at the time of writing (R = 0.40, functional, seed
    // 0xF100D/314): blobs 42.5, piecewise 30.0, natural 29.9, stars
    // 18.9, bars 50.9, edge 47.1 dB. Floors sit ~4 dB under those.
    // Stars are genuinely the hard case: the reciprocal transfer smears
    // PSF tails across many code levels, inflating effective sparsity.
    let floors: &[(&str, f64)] = &[
        ("blobs", 38.0),
        ("piecewise", 26.0),
        ("natural", 26.0),
        ("stars", 15.0),
        ("bars", 46.0),
        ("edge", 43.0),
    ];
    for (name, scene) in Scene::evaluation_suite() {
        let img = scene.render(32, 32, 314);
        let report = evaluate(&im, |_| {}, &img).unwrap();
        let floor = floors
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| *f)
            .unwrap_or(15.0);
        assert!(
            report.psnr_code_db > floor,
            "{name}: {:.1} dB below floor {floor}",
            report.psnr_code_db
        );
    }
}

#[test]
fn identity_dictionary_is_competitive_on_star_fields() {
    // In the code domain no dictionary dominates on stars (measured:
    // DCT 19.4, identity+IHT 19.2, Haar 19.2 dB at R=0.3) because the
    // reciprocal transfer spreads each PSF over many code levels. The
    // test pins that parity: pixel-domain recovery must stay within
    // 1.5 dB of the DCT default.
    let im = imager(32, 0.3);
    let scene = Scene::star_field(12).render(32, 32, 55);
    let frame = im.capture(&scene);
    let truth = im.ideal_codes(&scene).to_code_f64();
    let db_for = |kind| {
        let mut d = Decoder::for_frame(&frame).unwrap();
        d.dictionary(kind);
        if kind == DictionaryKind::Identity {
            d.algorithm(SolverKind::Iht { sparsity: 150 });
        }
        psnr(&truth, d.reconstruct(&frame).unwrap().code_image(), 255.0)
    };
    let id = db_for(DictionaryKind::Identity);
    let dct = db_for(DictionaryKind::Dct2d);
    assert!(id > 16.0, "identity reconstruction too weak: {id:.1} dB");
    assert!(
        id > dct - 1.5,
        "identity ({id:.1} dB) should be within 1.5 dB of DCT ({dct:.1} dB) on stars"
    );
}

#[test]
fn event_accurate_capture_costs_almost_nothing_in_psnr() {
    // The paper's system-level claim: serialization-induced LSB errors
    // have negligible influence on reconstruction.
    let scene = Scene::gaussian_blobs(3).render(32, 32, 12);
    let build = |fidelity| {
        CompressiveImager::builder(32, 32)
            .ratio(0.4)
            .seed(9)
            .fidelity(fidelity)
            .build()
            .unwrap()
    };
    let reference = build(Fidelity::Functional);
    let event = build(Fidelity::EventAccurate);
    let truth = reference.ideal_codes(&scene).to_code_f64();
    let db_of = |im: &CompressiveImager| {
        let frame = im.capture(&scene);
        let recon = Decoder::for_frame(&frame)
            .unwrap()
            .reconstruct(&frame)
            .unwrap();
        psnr(&truth, recon.code_image(), 255.0)
    };
    let db_functional = db_of(&reference);
    let db_event = db_of(&event);
    assert!(
        db_functional - db_event < 1.5,
        "event-accurate capture lost {:.2} dB — the paper claims negligible",
        db_functional - db_event
    );
}

#[test]
fn noise_degrades_but_does_not_destroy() {
    let scene = Scene::gaussian_blobs(3).render(32, 32, 21);
    let noisy_cfg = SensorConfig::builder(32, 32)
        .jitter_sigma(15e-9)
        .offset_sigma_volts(2e-3)
        .fpn_gain_sigma(0.01)
        .build()
        .unwrap();
    let noisy = CompressiveImager::builder(32, 32)
        .sensor_config(noisy_cfg)
        .ratio(0.4)
        .seed(3)
        .build()
        .unwrap();
    let frame = noisy.capture(&scene);
    let recon = Decoder::for_frame(&frame)
        .unwrap()
        .reconstruct(&frame)
        .unwrap();
    // Compare against the *noiseless* ideal codes: FPN+jitter+arbitration
    // all count as error here.
    let clean = imager(32, 0.4);
    let truth = clean.ideal_codes(&scene).to_code_f64();
    let db = psnr(&truth, recon.code_image(), 255.0);
    assert!(db > 18.0, "noisy reconstruction collapsed: {db:.1} dB");
}
