//! Solver-pluggable recovery stack: end-to-end identity guarantees.
//!
//! Every [`SolverKind`] must behave identically however it is driven:
//! cold per-frame decoders, warm cached sessions, and the parallel
//! batch engine all produce bit-identical reconstructions, because
//! every cached value (operator, dictionary, per-solver norm estimate,
//! column view) equals its cold rebuild and every workspace reset is
//! value-transparent.

use std::sync::Arc;

use tepics::core::batch::BatchRunner;
use tepics::prelude::*;

fn imager(side: usize, seed: u64) -> CompressiveImager {
    CompressiveImager::builder(side, side)
        .ratio(0.35)
        .seed(seed)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
}

/// Warm (cached session) decodes are bit-identical to cold (fresh
/// cacheless decoder) decodes for every solver kind — the cache and
/// workspace layers are value-transparent across the whole roster.
#[test]
fn warm_session_equals_cold_decoder_for_every_solver_kind() {
    let im = imager(16, 0xBEEF);
    let scenes: Vec<ImageF64> = (0..3)
        .map(|i| Scene::gaussian_blobs(2).render(16, 16, i))
        .collect();
    let frames: Vec<CompressedFrame> = scenes.iter().map(|s| im.capture(s)).collect();
    let k = frames[0].samples.len();
    for kind in SolverKind::shootout_set(k) {
        // Cold: a fresh cacheless decoder per frame.
        let cold: Vec<Reconstruction> = frames
            .iter()
            .map(|f| {
                let mut d = Decoder::for_frame(f).unwrap();
                d.algorithm(kind);
                d.reconstruct(f).unwrap()
            })
            .collect();
        // Warm: one session; frames 2..n hit every cache layer.
        let mut session = DecodeSession::new();
        session.algorithm(kind);
        for (i, f) in frames.iter().enumerate() {
            let warm = session.push_frame(f).unwrap();
            assert_eq!(
                warm.reconstruction, cold[i],
                "{kind:?}: frame {i} warm != cold"
            );
        }
        assert!(
            session.cache().stats().hits >= frames.len() as u64 - 1,
            "{kind:?}: session never went warm"
        );
    }
}

/// A shared cache serves many sessions without cross-talk: two sessions
/// with different solvers on one cache reproduce their private-cache
/// results exactly (per-solver norm entries and column views are keyed
/// per solver, so they can never mix).
#[test]
fn shared_cache_does_not_mix_solver_state() {
    let im = imager(16, 0x7EA);
    let scene = Scene::gaussian_blobs(3).render(16, 16, 9);
    let frame = im.capture(&scene);
    let k = frame.samples.len();
    let kinds = SolverKind::shootout_set(k);
    // Private-cache reference per kind.
    let reference: Vec<Reconstruction> = kinds
        .iter()
        .map(|&kind| {
            let mut s = DecodeSession::new();
            s.algorithm(kind);
            s.push_frame(&frame).unwrap().reconstruction
        })
        .collect();
    // All kinds through one shared cache, interleaved twice.
    let shared = Arc::new(OperatorCache::new());
    for round in 0..2 {
        for (i, &kind) in kinds.iter().enumerate() {
            let mut s = DecodeSession::with_cache(shared.clone());
            s.algorithm(kind);
            let got = s.push_frame(&frame).unwrap().reconstruction;
            assert_eq!(
                got, reference[i],
                "round {round}: {kind:?} changed under the shared cache"
            );
        }
    }
}

/// The batch engine's thread-count determinism holds for every solver
/// kind selected through `run_with`.
#[test]
fn batch_runs_identical_across_thread_counts_for_all_solvers() {
    let im = imager(16, 42);
    let scenes: Vec<ImageF64> = (0..4)
        .map(|i| Scene::gaussian_blobs(3).render(16, 16, i))
        .collect();
    let k = im.capture(&scenes[0]).samples.len();
    for kind in SolverKind::shootout_set(k) {
        let serial = BatchRunner::with_threads(1)
            .run_with(&im, &scenes, |d| {
                d.algorithm(kind);
            })
            .unwrap();
        let parallel = BatchRunner::with_threads(4)
            .run_with(&im, &scenes, |d| {
                d.algorithm(kind);
            })
            .unwrap();
        assert_eq!(
            serial.reports, parallel.reports,
            "{kind:?}: thread count changed batch results"
        );
    }
}

/// `RecoveryParams` presets drive the same path as setting solver and
/// dictionary by hand.
#[test]
fn recovery_params_equal_manual_configuration() {
    let im = imager(16, 5);
    let scene = Scene::star_field(5).render(16, 16, 2);
    let frame = im.capture(&scene);
    let params = RecoveryParams::star_field(10);
    let via_params = {
        let mut s = DecodeSession::new();
        s.params(params);
        s.push_frame(&frame).unwrap().reconstruction
    };
    let manual = {
        let mut s = DecodeSession::new();
        s.algorithm(params.solver).dictionary(params.dictionary);
        s.push_frame(&frame).unwrap().reconstruction
    };
    assert_eq!(via_params, manual);
}
