//! Property-based tests spanning the workspace (proptest).
//!
//! Each property encodes a system invariant the pipeline depends on:
//! CA stepping equivalence, arbiter serialization, transform
//! orthonormality, wire-format losslessness, XOR-measurement counting.

use proptest::prelude::*;
use tepics::ca::{Automaton1D, Boundary, ElementaryRule};
use tepics::core::{CompressedFrame, FrameHeader, StrategyKind};
use tepics::cs::measurement::SelectionMeasurement;
use tepics::cs::XorMeasurement;
use tepics::imaging::{Dct2d, Haar2d};
use tepics::sensor::ColumnArbiter;
use tepics::util::BitVec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Word-parallel CA stepping equals the per-cell reference for any
    /// rule, size, boundary and seed.
    #[test]
    fn ca_word_parallel_matches_reference(
        rule in 0u8..=255,
        cells in 1usize..200,
        seed in any::<u64>(),
        periodic in any::<bool>(),
        steps in 1usize..16,
    ) {
        let boundary = if periodic { Boundary::Periodic } else { Boundary::Fixed(false) };
        let init = Automaton1D::from_seed(cells, seed, ElementaryRule::new(rule), boundary);
        let mut fast = init.clone();
        let mut slow = init;
        for _ in 0..steps {
            fast.step();
            slow.step_reference();
        }
        prop_assert_eq!(fast.state(), slow.state());
    }

    /// The column arbiter never drops a pulse, never overlaps two
    /// events, never grants before the flip, and releases top-down.
    #[test]
    fn arbiter_invariants(
        times in prop::collection::vec(0.0f64..20e-6, 1..64),
        duration_ns in 1.0f64..200.0,
    ) {
        let pulses: Vec<(usize, f64)> =
            times.iter().enumerate().map(|(row, &t)| (row, t)).collect();
        let arbiter = ColumnArbiter::with_timing(duration_ns * 1e-9, 1e-9);
        let outcome = arbiter.arbitrate(&pulses);
        // No pulse dropped.
        prop_assert_eq!(outcome.events.len(), pulses.len());
        let mut rows: Vec<usize> = outcome.events.iter().map(|e| e.row).collect();
        rows.sort_unstable();
        prop_assert_eq!(rows, (0..pulses.len()).collect::<Vec<_>>());
        // Serialized and causal.
        let mut sorted = outcome.events.clone();
        sorted.sort_by(|a, b| a.t_grant.partial_cmp(&b.t_grant).unwrap());
        for pair in sorted.windows(2) {
            prop_assert!(pair[1].t_grant >= pair[0].t_grant + duration_ns * 1e-9 - 1e-15);
        }
        for e in &outcome.events {
            prop_assert!(e.t_grant >= e.t_flip - 1e-15);
        }
    }

    /// DCT and Haar are exact inverses on arbitrary data.
    #[test]
    fn transforms_reconstruct_perfectly(
        data in prop::collection::vec(-10.0f64..10.0, 64),
    ) {
        let dct = Dct2d::new(8, 8);
        let back = dct.inverse(&dct.forward(&data));
        for (a, b) in data.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        let haar = Haar2d::new(8, 8, 3);
        let back = haar.inverse(&haar.forward(&data));
        for (a, b) in data.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The wire codec is lossless for arbitrary sample payloads.
    #[test]
    fn wire_format_roundtrips(
        samples in prop::collection::vec(0u32..(1 << 20), 1..200),
        seed in any::<u64>(),
    ) {
        let frame = CompressedFrame {
            header: FrameHeader {
                rows: 64,
                cols: 64,
                code_bits: 8,
                sample_bits: 20,
                strategy: StrategyKind::rule30(100),
                seed,
            },
            samples,
        };
        let back = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// XOR-measurement row weight follows the closed form
    /// `a(N−b) + (M−a)b` and the operator matches its own mask.
    #[test]
    fn xor_measurement_counting(
        bits in prop::collection::vec(any::<bool>(), 24),
    ) {
        let m = 14usize;
        let n = 10usize;
        let pattern = BitVec::from_bools(bits.iter().copied());
        let a = (0..m).filter(|&i| pattern.get(i)).count();
        let b = (m..m + n).filter(|&i| pattern.get(i)).count();
        let meas = XorMeasurement::from_patterns(m, n, vec![pattern]);
        prop_assert_eq!(meas.ones_in_row(0), a * (n - b) + (m - a) * b);
        prop_assert_eq!(meas.mask(0).count_ones(), meas.ones_in_row(0));
    }

    /// Sample values can never exceed the Eq. (1) bound
    /// `(2^code_bits − 1) · selected`, and the selection never exceeds
    /// M·N — so 20 bits always suffice at 64×64.
    #[test]
    fn sample_values_respect_eq1(
        seed in any::<u64>(),
        intensity in 0.0f64..1.0,
    ) {
        use tepics::prelude::*;
        let scene = tepics::imaging::ImageF64::new(16, 16, intensity);
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.1)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        let frame = imager.capture(&scene);
        for &s in &frame.samples {
            prop_assert!(s <= 255 * 256, "sample {s} exceeds Eq. (1) bound");
        }
    }
}
