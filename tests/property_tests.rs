//! Randomized property tests spanning the workspace.
//!
//! Each property encodes a system invariant the pipeline depends on:
//! CA stepping equivalence, arbiter serialization, transform
//! orthonormality, wire-format losslessness, XOR-measurement counting.
//!
//! The cases are driven by the workspace's own deterministic
//! [`SplitMix64`] generator rather than an external property-testing
//! crate: the build environment has no registry access, and seeded
//! sampling keeps failures reproducible by construction (the failing
//! case index is part of the assertion message).

use tepics::ca::{Automaton1D, Boundary, ElementaryRule};
use tepics::core::{CompressedFrame, FrameHeader, StrategyKind};
use tepics::cs::measurement::SelectionMeasurement;
use tepics::cs::XorMeasurement;
use tepics::imaging::{Dct2d, Haar2d};
use tepics::sensor::ColumnArbiter;
use tepics::util::{BitVec, SplitMix64};

const CASES: usize = 64;

/// Word-parallel CA stepping equals the per-cell reference for any
/// rule, size, boundary and seed.
#[test]
fn ca_word_parallel_matches_reference() {
    let mut rng = SplitMix64::new(0xCA5E);
    for case in 0..CASES {
        let rule = rng.next_below(256) as u8;
        let cells = 1 + rng.next_below(199) as usize;
        let seed = rng.next_u64();
        let periodic = rng.next_bool();
        let steps = 1 + rng.next_below(15) as usize;
        let boundary = if periodic {
            Boundary::Periodic
        } else {
            Boundary::Fixed(false)
        };
        let init = Automaton1D::from_seed(cells, seed, ElementaryRule::new(rule), boundary);
        let mut fast = init.clone();
        let mut slow = init;
        for _ in 0..steps {
            fast.step();
            slow.step_reference();
        }
        assert_eq!(
            fast.state(),
            slow.state(),
            "case {case}: rule {rule}, {cells} cells, seed {seed:#x}, \
             periodic={periodic}, {steps} steps"
        );
    }
}

/// The column arbiter never drops a pulse, never overlaps two events,
/// never grants before the flip, and releases top-down.
#[test]
fn arbiter_invariants() {
    let mut rng = SplitMix64::new(0xA5B1);
    for case in 0..CASES {
        let rows = 1 + rng.next_below(63) as usize;
        let pulses: Vec<(usize, f64)> =
            (0..rows).map(|row| (row, rng.next_f64() * 20e-6)).collect();
        let duration_ns = 1.0 + rng.next_f64() * 199.0;
        let arbiter = ColumnArbiter::with_timing(duration_ns * 1e-9, 1e-9);
        let outcome = arbiter.arbitrate(&pulses);
        // No pulse dropped.
        assert_eq!(
            outcome.events.len(),
            pulses.len(),
            "case {case}: pulse dropped"
        );
        let mut event_rows: Vec<usize> = outcome.events.iter().map(|e| e.row).collect();
        event_rows.sort_unstable();
        assert_eq!(
            event_rows,
            (0..pulses.len()).collect::<Vec<_>>(),
            "case {case}"
        );
        // Serialized and causal.
        let mut sorted = outcome.events.clone();
        sorted.sort_by(|a, b| a.t_grant.partial_cmp(&b.t_grant).unwrap());
        for pair in sorted.windows(2) {
            assert!(
                pair[1].t_grant >= pair[0].t_grant + duration_ns * 1e-9 - 1e-15,
                "case {case}: events overlap"
            );
        }
        for e in &outcome.events {
            assert!(
                e.t_grant >= e.t_flip - 1e-15,
                "case {case}: grant before flip"
            );
        }
    }
}

/// DCT and Haar are exact inverses on arbitrary data.
#[test]
fn transforms_reconstruct_perfectly() {
    let mut rng = SplitMix64::new(0xD0C7);
    for case in 0..CASES {
        let data: Vec<f64> = (0..64).map(|_| rng.next_f64() * 20.0 - 10.0).collect();
        let dct = Dct2d::new(8, 8);
        let back = dct.inverse(&dct.forward(&data));
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "case {case}: DCT not inverse");
        }
        let haar = Haar2d::new(8, 8, 3);
        let back = haar.inverse(&haar.forward(&data));
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "case {case}: Haar not inverse");
        }
    }
}

/// The wire codec is lossless for arbitrary sample payloads.
#[test]
fn wire_format_roundtrips() {
    let mut rng = SplitMix64::new(0x3133);
    for case in 0..CASES {
        let count = 1 + rng.next_below(199) as usize;
        let samples: Vec<u32> = (0..count).map(|_| rng.next_below(1 << 20) as u32).collect();
        let seed = rng.next_u64();
        let frame = CompressedFrame {
            header: FrameHeader {
                rows: 64,
                cols: 64,
                code_bits: 8,
                sample_bits: 20,
                strategy: StrategyKind::rule30(100),
                seed,
            },
            samples,
        };
        let back = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(back, frame, "case {case}: wire round-trip lost data");
    }
}

/// XOR-measurement row weight follows the closed form
/// `a(N−b) + (M−a)b` and the operator matches its own mask.
#[test]
fn xor_measurement_counting() {
    let mut rng = SplitMix64::new(0x0DD5);
    for case in 0..CASES {
        let m = 14usize;
        let n = 10usize;
        let bits: Vec<bool> = (0..24).map(|_| rng.next_bool()).collect();
        let pattern = BitVec::from_bools(bits.iter().copied());
        let a = (0..m).filter(|&i| pattern.get(i)).count();
        let b = (m..m + n).filter(|&i| pattern.get(i)).count();
        let meas = XorMeasurement::from_patterns(m, n, vec![pattern]);
        assert_eq!(
            meas.ones_in_row(0),
            a * (n - b) + (m - a) * b,
            "case {case}"
        );
        assert_eq!(
            meas.mask(0).count_ones(),
            meas.ones_in_row(0),
            "case {case}"
        );
    }
}

/// Sample values can never exceed the Eq. (1) bound
/// `(2^code_bits − 1) · selected`, and the selection never exceeds
/// M·N — so 20 bits always suffice at 64×64.
#[test]
fn sample_values_respect_eq1() {
    use tepics::prelude::*;
    let mut rng = SplitMix64::new(0xE011);
    // Fewer cases: each one runs a full capture.
    for case in 0..8 {
        let seed = rng.next_u64();
        let intensity = rng.next_f64();
        let scene = tepics::imaging::ImageF64::new(16, 16, intensity);
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.1)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        let frame = imager.capture(&scene);
        for &s in &frame.samples {
            assert!(
                s <= 255 * 256,
                "case {case}: sample {s} exceeds Eq. (1) bound"
            );
        }
    }
}
