//! Randomized property tests spanning the workspace.
//!
//! Each property encodes a system invariant the pipeline depends on:
//! CA stepping equivalence, arbiter serialization, transform
//! orthonormality, wire-format losslessness, XOR-measurement counting.
//!
//! The cases are driven by the workspace's own deterministic
//! [`SplitMix64`] generator rather than an external property-testing
//! crate: the build environment has no registry access, and seeded
//! sampling keeps failures reproducible by construction (the failing
//! case index is part of the assertion message).

use tepics::ca::{Automaton1D, Boundary, ElementaryRule};
use tepics::core::{CompressedFrame, FrameHeader, StrategyKind};
use tepics::cs::measurement::SelectionMeasurement;
use tepics::cs::XorMeasurement;
use tepics::imaging::{Dct2d, Haar2d};
use tepics::sensor::ColumnArbiter;
use tepics::util::{BitVec, SplitMix64};

const CASES: usize = 64;

/// Word-parallel CA stepping equals the per-cell reference for any
/// rule, size, boundary and seed.
#[test]
fn ca_word_parallel_matches_reference() {
    let mut rng = SplitMix64::new(0xCA5E);
    for case in 0..CASES {
        let rule = rng.next_below(256) as u8;
        let cells = 1 + rng.next_below(199) as usize;
        let seed = rng.next_u64();
        let periodic = rng.next_bool();
        let steps = 1 + rng.next_below(15) as usize;
        let boundary = if periodic {
            Boundary::Periodic
        } else {
            Boundary::Fixed(false)
        };
        let init = Automaton1D::from_seed(cells, seed, ElementaryRule::new(rule), boundary);
        let mut fast = init.clone();
        let mut slow = init;
        for _ in 0..steps {
            fast.step();
            slow.step_reference();
        }
        assert_eq!(
            fast.state(),
            slow.state(),
            "case {case}: rule {rule}, {cells} cells, seed {seed:#x}, \
             periodic={periodic}, {steps} steps"
        );
    }
}

/// The column arbiter never drops a pulse, never overlaps two events,
/// never grants before the flip, and releases top-down.
#[test]
fn arbiter_invariants() {
    let mut rng = SplitMix64::new(0xA5B1);
    for case in 0..CASES {
        let rows = 1 + rng.next_below(63) as usize;
        let pulses: Vec<(usize, f64)> =
            (0..rows).map(|row| (row, rng.next_f64() * 20e-6)).collect();
        let duration_ns = 1.0 + rng.next_f64() * 199.0;
        let arbiter = ColumnArbiter::with_timing(duration_ns * 1e-9, 1e-9);
        let outcome = arbiter.arbitrate(&pulses);
        // No pulse dropped.
        assert_eq!(
            outcome.events.len(),
            pulses.len(),
            "case {case}: pulse dropped"
        );
        let mut event_rows: Vec<usize> = outcome.events.iter().map(|e| e.row).collect();
        event_rows.sort_unstable();
        assert_eq!(
            event_rows,
            (0..pulses.len()).collect::<Vec<_>>(),
            "case {case}"
        );
        // Serialized and causal.
        let mut sorted = outcome.events.clone();
        sorted.sort_by(|a, b| a.t_grant.partial_cmp(&b.t_grant).unwrap());
        for pair in sorted.windows(2) {
            assert!(
                pair[1].t_grant >= pair[0].t_grant + duration_ns * 1e-9 - 1e-15,
                "case {case}: events overlap"
            );
        }
        for e in &outcome.events {
            assert!(
                e.t_grant >= e.t_flip - 1e-15,
                "case {case}: grant before flip"
            );
        }
    }
}

/// DCT and Haar are exact inverses on arbitrary data.
#[test]
fn transforms_reconstruct_perfectly() {
    let mut rng = SplitMix64::new(0xD0C7);
    for case in 0..CASES {
        let data: Vec<f64> = (0..64).map(|_| rng.next_f64() * 20.0 - 10.0).collect();
        let dct = Dct2d::new(8, 8);
        let back = dct.inverse(&dct.forward(&data));
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "case {case}: DCT not inverse");
        }
        let haar = Haar2d::new(8, 8, 3);
        let back = haar.inverse(&haar.forward(&data));
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "case {case}: Haar not inverse");
        }
    }
}

/// The wire codec is lossless for arbitrary sample payloads.
#[test]
fn wire_format_roundtrips() {
    let mut rng = SplitMix64::new(0x3133);
    for case in 0..CASES {
        let count = 1 + rng.next_below(199) as usize;
        let samples: Vec<u32> = (0..count).map(|_| rng.next_below(1 << 20) as u32).collect();
        let seed = rng.next_u64();
        let frame = CompressedFrame {
            header: FrameHeader {
                rows: 64,
                cols: 64,
                code_bits: 8,
                sample_bits: 20,
                strategy: StrategyKind::rule30(100),
                seed,
            },
            samples,
        };
        let back = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(back, frame, "case {case}: wire round-trip lost data");
    }
}

/// Hostile wire input can never panic or wrap around: every truncated,
/// bit-flipped, or random buffer fed to the frame parser either fails
/// with `CoreError::MalformedFrame` or yields a well-formed frame —
/// nothing else. (`from_bytes` is infallible against panics by
/// construction of its bounds checks; this property pins that.)
#[test]
fn frame_parser_survives_hostile_bytes() {
    use tepics::core::CoreError;
    let mut rng = SplitMix64::new(0xBAD5);
    let reference = CompressedFrame {
        header: FrameHeader {
            rows: 32,
            cols: 32,
            code_bits: 8,
            sample_bits: 18,
            strategy: StrategyKind::rule30(128),
            seed: 0x1234_5678,
        },
        samples: (0..100).map(|_| rng.next_below(1 << 18) as u32).collect(),
    };
    let good = reference.to_bytes();
    let check = |bytes: &[u8], what: &str| match CompressedFrame::from_bytes(bytes) {
        Ok(frame) => {
            // A parse that "succeeds" must at least be self-consistent.
            assert!(frame.header.rows > 0 && frame.header.cols > 0, "{what}");
            assert!(
                frame.header.sample_bits >= 1 && frame.header.sample_bits <= 32,
                "{what}"
            );
        }
        Err(CoreError::MalformedFrame(_)) => {}
        Err(other) => panic!("{what}: unexpected error {other:?}"),
    };
    // Every truncation point.
    for cut in 0..good.len() {
        check(&good[..cut], &format!("truncated to {cut}"));
    }
    // Random single-bit flips.
    for case in 0..CASES {
        let mut flipped = good.clone();
        let bit = rng.next_below((good.len() * 8) as u64) as usize;
        flipped[bit / 8] ^= 1 << (bit % 8);
        check(&flipped, &format!("case {case}: bit {bit} flipped"));
    }
    // Fully random buffers of random lengths.
    for case in 0..CASES {
        let len = rng.next_below(512) as usize;
        let junk: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        check(&junk, &format!("case {case}: random buffer"));
    }
}

/// The same hostility property for the stream container: the parser
/// must always return frames or `MalformedFrame` — never panic — under
/// truncation, bit flips, and random garbage, at any chunking.
#[test]
fn stream_parser_survives_hostile_bytes() {
    use tepics::core::stream::{StreamParser, StreamWriter};
    use tepics::core::CoreError;
    let mut rng = SplitMix64::new(0x57EA);
    let header = FrameHeader {
        rows: 16,
        cols: 16,
        code_bits: 8,
        sample_bits: 16,
        strategy: StrategyKind::rule30(64),
        seed: 0xFEED,
    };
    let mut writer = StreamWriter::new(header).unwrap();
    for _ in 0..3 {
        let k = 1 + rng.next_below(64) as usize;
        let samples: Vec<u32> = (0..k).map(|_| rng.next_below(1 << 16) as u32).collect();
        writer.push_samples(&samples).unwrap();
    }
    let good = writer.into_bytes();
    let drain = |bytes: &[u8], what: &str| {
        let mut parser = StreamParser::new();
        // Feed in random-sized chunks to exercise every resume point.
        let mut rng = SplitMix64::new(bytes.len() as u64);
        let mut pos = 0;
        while pos < bytes.len() {
            let step = 1 + rng.next_below(31) as usize;
            let end = (pos + step).min(bytes.len());
            parser.push_bytes(&bytes[pos..end]);
            pos = end;
            loop {
                match parser.next_frame() {
                    Ok(Some(frame)) => assert!(!frame.samples.is_empty(), "{what}"),
                    Ok(None) => break,
                    Err(CoreError::MalformedFrame(_)) => return,
                    Err(other) => panic!("{what}: unexpected error {other:?}"),
                }
            }
        }
    };
    for cut in 0..good.len() {
        drain(&good[..cut], &format!("truncated to {cut}"));
    }
    for case in 0..CASES {
        let mut flipped = good.clone();
        let bit = rng.next_below((good.len() * 8) as u64) as usize;
        flipped[bit / 8] ^= 1 << (bit % 8);
        drain(&flipped, &format!("case {case}: bit {bit} flipped"));
    }
    for case in 0..CASES {
        let len = rng.next_below(400) as usize;
        let junk: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        drain(&junk, &format!("case {case}: random buffer"));
    }
}

/// XOR-measurement row weight follows the closed form
/// `a(N−b) + (M−a)b` and the operator matches its own mask.
#[test]
fn xor_measurement_counting() {
    let mut rng = SplitMix64::new(0x0DD5);
    for case in 0..CASES {
        let m = 14usize;
        let n = 10usize;
        let bits: Vec<bool> = (0..24).map(|_| rng.next_bool()).collect();
        let pattern = BitVec::from_bools(bits.iter().copied());
        let a = (0..m).filter(|&i| pattern.get(i)).count();
        let b = (m..m + n).filter(|&i| pattern.get(i)).count();
        let meas = XorMeasurement::from_patterns(m, n, vec![pattern]);
        assert_eq!(
            meas.ones_in_row(0),
            a * (n - b) + (m - a) * b,
            "case {case}"
        );
        assert_eq!(
            meas.mask(0).count_ones(),
            meas.ones_in_row(0),
            "case {case}"
        );
    }
}

/// Sample values can never exceed the Eq. (1) bound
/// `(2^code_bits − 1) · selected`, and the selection never exceeds
/// M·N — so 20 bits always suffice at 64×64.
#[test]
fn sample_values_respect_eq1() {
    use tepics::prelude::*;
    let mut rng = SplitMix64::new(0xE011);
    // Fewer cases: each one runs a full capture.
    for case in 0..8 {
        let seed = rng.next_u64();
        let intensity = rng.next_f64();
        let scene = tepics::imaging::ImageF64::new(16, 16, intensity);
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.1)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        let frame = imager.capture(&scene);
        for &s in &frame.samples {
            assert!(
                s <= 255 * 256,
                "case {case}: sample {s} exceeds Eq. (1) bound"
            );
        }
    }
}

/// The fast (Lee) DCT path equals a direct basis-definition evaluation
/// to ≤1e-10 on random signals, for power-of-two lengths (fast path)
/// and odd lengths (matrix fallback), forward, inverse, and round-trip.
#[test]
fn fast_dct_matches_basis_definition() {
    use tepics::imaging::Dct1d;
    let mut rng = SplitMix64::new(0xFA57);
    for case in 0..CASES {
        // Alternate between fast-path and fallback lengths.
        let n = if case % 2 == 0 {
            1usize << (1 + rng.next_below(8)) // 2..256, power of two
        } else {
            3 + 2 * rng.next_below(30) as usize // odd
        };
        let dct = Dct1d::new(n);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 20.0 - 10.0).collect();
        let coeffs = dct.forward(&x);
        // Direct definition: X_k = c_k Σ_i cos(π(2i+1)k/2n)·x_i.
        for (k, &ck) in coeffs.iter().enumerate() {
            let c = if k == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            let direct: f64 = x
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    c * (std::f64::consts::PI * (2 * i + 1) as f64 * k as f64 / (2 * n) as f64)
                        .cos()
                        * v
                })
                .sum();
            assert!(
                (ck - direct).abs() <= 1e-10 * direct.abs().max(1.0),
                "case {case}: n={n} k={k}: fast {ck} vs definition {direct}"
            );
        }
        let back = dct.inverse(&coeffs);
        for (i, (a, b)) in x.iter().zip(&back).enumerate() {
            assert!(
                (a - b).abs() < 1e-10,
                "case {case}: n={n} i={i}: round-trip {b} vs {a}"
            );
        }
    }
}

/// The factorized fast-Φ paths equal the brute-force `selected()` sums
/// and satisfy the adjoint identity at random geometries (odd sizes,
/// multi-word columns, off-grid measurement counts).
#[test]
fn fast_phi_matches_bruteforce_at_random_geometries() {
    use tepics::cs::op::adjoint_mismatch;
    use tepics::cs::LinearOperator;
    let mut rng = SplitMix64::new(0x0F1);
    for case in 0..24 {
        let m = 1 + rng.next_below(20) as usize;
        let n = 1 + rng.next_below(80) as usize;
        let k = 1 + rng.next_below(40) as usize;
        let patterns: Vec<BitVec> = (0..k)
            .map(|_| BitVec::from_bools((0..m + n).map(|_| rng.next_bool())))
            .collect();
        let meas = XorMeasurement::from_patterns(m, n, patterns);
        let x: Vec<f64> = (0..m * n).map(|_| rng.next_f64() * 255.0).collect();
        let y = meas.apply_vec(&x);
        for (row, &yk) in y.iter().enumerate() {
            let mut brute = 0.0;
            for i in 0..m {
                for j in 0..n {
                    if meas.selected(row, i, j) {
                        brute += x[i * n + j];
                    }
                }
            }
            assert!(
                (yk - brute).abs() <= 1e-10 * brute.abs().max(1.0),
                "case {case}: {m}×{n} K={k} row {row}: {yk} vs {brute}"
            );
        }
        assert!(
            adjoint_mismatch(&meas, 3, 0x5EED + case) < 1e-12,
            "case {case}: {m}×{n} K={k} adjoint identity"
        );
    }
}

/// Solver-workspace reuse is value-transparent: a warm workspace solve
/// equals a cold solve bit for bit, across *all eight* solver
/// algorithms (FISTA, ISTA, IHT, AMP, OMP, CoSaMP, CGLS, debias) and
/// problem sizes. Extends the PR 3 test, which covered only the
/// proximal/thresholding family.
#[test]
fn workspace_reuse_is_bit_identical_for_all_solvers() {
    use tepics::cs::{DenseMatrix, LinearOperator};
    use tepics::recovery::cg::Cgls;
    use tepics::recovery::{Amp, CoSaMp, Debias, Fista, Iht, Ista, Omp, Solver, SolverWorkspace};
    let mut rng = SplitMix64::new(0x5073);
    let mut ws = SolverWorkspace::new();
    for case in 0..8 {
        let rows = 10 + rng.next_below(20) as usize;
        let cols = rows + rng.next_below(30) as usize;
        let a = DenseMatrix::from_fn(rows, cols, |_, _| {
            rng.next_gaussian() / (rows as f64).sqrt()
        });
        let mut x = vec![0.0; cols];
        x[rng.next_below(cols as u64) as usize] = 1.5;
        let y = a.apply_vec(&x);
        let mut fista = Fista::new();
        fista.max_iter(60);
        let mut ista = Ista::new();
        ista.max_iter(60);
        let mut iht = Iht::new(2);
        iht.max_iter(60);
        let mut amp = Amp::new();
        amp.max_iter(40);
        let omp = Omp::new(3);
        let mut cosamp = CoSaMp::new(2);
        cosamp.max_iter(10);
        let cgls = Cgls::new(40, 1e-10);
        let debias = Debias::new(&fista, 6);
        let solvers: [&dyn Solver; 8] = [&fista, &ista, &iht, &amp, &omp, &cosamp, &cgls, &debias];
        for solver in solvers {
            let name = solver.caps().name;
            let cold = solver.solve(&a, &y).unwrap();
            let warm = solver.solve_with(&a, &y, &mut ws).unwrap();
            assert_eq!(cold, warm, "case {case}: {name} warm != cold");
            // Reuse again immediately — the second warm solve must also
            // match (the workspace reset is idempotent).
            let warm2 = solver.solve_with(&a, &y, &mut ws).unwrap();
            assert_eq!(cold, warm2, "case {case}: {name} second warm != cold");
        }
    }
}

/// Invoking any solver through the `Solver` trait object is
/// bit-identical to calling the concrete type's inherent entry points.
#[test]
fn solver_trait_dispatch_is_bit_identical_to_direct_calls() {
    use tepics::cs::{DenseMatrix, LinearOperator};
    use tepics::recovery::cg::Cgls;
    use tepics::recovery::debias::debias;
    use tepics::recovery::{Amp, CoSaMp, Debias, Fista, Iht, Ista, Omp, Solver, SolverWorkspace};
    let mut rng = SplitMix64::new(0xD15_7A7C);
    for case in 0..8 {
        let rows = 12 + rng.next_below(18) as usize;
        let cols = rows + rng.next_below(24) as usize;
        let a = DenseMatrix::from_fn(rows, cols, |_, _| {
            rng.next_gaussian() / (rows as f64).sqrt()
        });
        let mut x = vec![0.0; cols];
        x[rng.next_below(cols as u64) as usize] = -2.0;
        x[rng.next_below(cols as u64) as usize] = 1.0;
        let y = a.apply_vec(&x);
        let mut ws = SolverWorkspace::new();
        // Each pair: (trait-object result, inherent-call result).
        let mut fista = Fista::new();
        fista.max_iter(50);
        assert_eq!(
            Solver::solve_with(&fista, &a, &y, &mut ws).unwrap(),
            fista.solve_with(&a, &y, &mut ws).unwrap(),
            "case {case}: fista"
        );
        let mut ista = Ista::new();
        ista.max_iter(50);
        assert_eq!(
            Solver::solve_with(&ista, &a, &y, &mut ws).unwrap(),
            ista.solve_with(&a, &y, &mut ws).unwrap(),
            "case {case}: ista"
        );
        let mut iht = Iht::new(2);
        iht.max_iter(50);
        assert_eq!(
            Solver::solve_with(&iht, &a, &y, &mut ws).unwrap(),
            iht.solve_with(&a, &y, &mut ws).unwrap(),
            "case {case}: iht"
        );
        let mut amp = Amp::new();
        amp.max_iter(30);
        assert_eq!(
            Solver::solve_with(&amp, &a, &y, &mut ws).unwrap(),
            amp.solve_with(&a, &y, &mut ws).unwrap(),
            "case {case}: amp"
        );
        let omp = Omp::new(3);
        assert_eq!(
            Solver::solve_with(&omp, &a, &y, &mut ws).unwrap(),
            omp.solve_with(&a, &y, &mut ws).unwrap(),
            "case {case}: omp"
        );
        let mut cosamp = CoSaMp::new(2);
        cosamp.max_iter(8);
        assert_eq!(
            Solver::solve_with(&cosamp, &a, &y, &mut ws).unwrap(),
            cosamp.solve_with(&a, &y, &mut ws).unwrap(),
            "case {case}: cosamp"
        );
        let cgls = Cgls::new(40, 1e-10);
        assert_eq!(
            Solver::solve_with(&cgls, &a, &y, &mut ws).unwrap(),
            cgls.solve_with(&a, &y, &mut ws).unwrap(),
            "case {case}: cgls"
        );
        // The Debias wrapper equals the manual inner-solve + debias().
        let wrapper = Debias::new(&fista, 5);
        let via_trait = Solver::solve_with(&wrapper, &a, &y, &mut ws).unwrap();
        let manual = {
            let first = fista.solve_with(&a, &y, &mut ws).unwrap();
            debias(&a, &y, &first, 5).unwrap()
        };
        assert_eq!(via_trait, manual, "case {case}: debias");
    }
}

/// A column-materialized view never changes what the columns *are*:
/// extraction through `column_into` (and OMP, which only reads
/// columns) is bit-identical with and without a view attached.
#[test]
fn column_view_extraction_is_bit_identical() {
    use tepics::cs::colview::ColumnMatrix;
    use tepics::cs::{DenseMatrix, LinearOperator};
    use tepics::recovery::Omp;
    let mut rng = SplitMix64::new(0xC01_BEEF);
    for case in 0..CASES / 4 {
        let rows = 8 + rng.next_below(16) as usize;
        let cols = rows + rng.next_below(24) as usize;
        let a = DenseMatrix::from_fn(rows, cols, |_, _| {
            rng.next_gaussian() / (rows as f64).sqrt()
        });
        let view = ColumnMatrix::from_operator(&a);
        for j in 0..cols {
            assert_eq!(
                view.column(j),
                a.column(j).as_slice(),
                "case {case} col {j}"
            );
        }
        let mut x = vec![0.0; cols];
        x[rng.next_below(cols as u64) as usize] = 1.0;
        let y = a.apply_vec(&x);
        let plain = Omp::new(3).solve(&a, &y).unwrap();
        let viewed = Omp::new(3).solve(&view, &y).unwrap();
        assert_eq!(plain, viewed, "case {case}: OMP through view diverged");
    }
}
