//! Integration: wire-format robustness and strategy synchronization
//! across the encoder/decoder boundary.

use tepics::prelude::*;

/// Every byte of a valid frame flipped one at a time: parsing must
/// either fail cleanly or produce a *different* frame — never panic,
/// never silently accept a corrupted header as the original.
#[test]
fn single_byte_corruption_never_panics() {
    let scene = Scene::gaussian_blobs(2).render(16, 16, 3);
    let imager = CompressiveImager::builder(16, 16)
        .ratio(0.2)
        .seed(0xAB)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let frame = imager.capture(&scene);
    let bytes = frame.to_bytes();
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xFF;
        // A clean rejection (Err) is fine; silent acceptance is not.
        if let Ok(parsed) = CompressedFrame::from_bytes(&corrupted) {
            assert_ne!(parsed, frame, "byte {i}: corruption went unnoticed");
        }
    }
}

/// A frame captured on one "machine" must decode identically on
/// another: serialize, re-parse, rebuild Φ, reconstruct, and compare
/// against reconstructing from the original in-memory frame.
#[test]
fn reconstruction_is_identical_across_the_wire() {
    let scene = Scene::natural_like().render(24, 24, 8);
    let imager = CompressiveImager::builder(24, 24)
        .ratio(0.3)
        .seed(0xFEED)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let frame = imager.capture(&scene);
    let received = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
    let local = Decoder::for_frame(&frame)
        .unwrap()
        .reconstruct(&frame)
        .unwrap();
    let remote = Decoder::for_frame(&received)
        .unwrap()
        .reconstruct(&received)
        .unwrap();
    assert_eq!(local.code_image(), remote.code_image());
    assert_eq!(local.mean_code(), remote.mean_code());
}

/// Two frames of the same scene with different seeds decorrelate, yet
/// both reconstruct — the imager can hop seeds per frame (a privacy
/// property ref. [13] cares about) as long as each frame carries its
/// seed.
#[test]
fn seed_hopping_frames_both_reconstruct() {
    let scene = Scene::gaussian_blobs(3).render(16, 16, 6);
    let truth = {
        let im = CompressiveImager::builder(16, 16)
            .ratio(0.4)
            .seed(1)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        im.ideal_codes(&scene).to_code_f64()
    };
    for seed in [1u64, 2] {
        let im = CompressiveImager::builder(16, 16)
            .ratio(0.4)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        let frame = im.capture(&scene);
        let recon = Decoder::for_frame(&frame)
            .unwrap()
            .reconstruct(&frame)
            .unwrap();
        let db = psnr(&truth, recon.code_image(), 255.0);
        assert!(db > 20.0, "seed {seed}: {db:.1} dB");
    }
    // And the sample streams themselves are uncorrelated.
    let f1 = CompressiveImager::builder(16, 16)
        .ratio(0.4)
        .seed(1)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
        .capture(&scene);
    let f2 = CompressiveImager::builder(16, 16)
        .ratio(0.4)
        .seed(2)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
        .capture(&scene);
    assert_ne!(f1.samples, f2.samples);
}

/// Decoders must reject frames whose geometry they were not built for.
#[test]
fn decoder_rejects_foreign_frames() {
    let scene16 = Scene::Uniform(0.5).render(16, 16, 0);
    let scene24 = Scene::Uniform(0.5).render(24, 24, 0);
    let im16 = CompressiveImager::builder(16, 16)
        .ratio(0.2)
        .seed(1)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let im24 = CompressiveImager::builder(24, 24)
        .ratio(0.2)
        .seed(1)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let f16 = im16.capture(&scene16);
    let f24 = im24.capture(&scene24);
    let decoder16 = Decoder::for_frame(&f16).unwrap();
    assert!(decoder16.reconstruct(&f24).is_err());
}
