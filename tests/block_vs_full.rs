//! Integration: full-frame strategy vs block-based baseline.
//!
//! The conclusion of the paper frames its future experimental work as
//! "verifying the advantages of full-frame compressive strategies versus
//! block-based compressed sampling"; the `ffvb` experiment sweeps this,
//! and these tests pin the qualitative facts the sweep relies on.

use tepics::prelude::*;

fn code_image_of(side: usize, scene: &ImageF64) -> (CompressiveImager, ImageF64) {
    let imager = CompressiveImager::builder(side, side)
        .ratio(0.4)
        .seed(0xB10C)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let codes = imager.ideal_codes(scene).to_code_f64();
    (imager, codes)
}

#[test]
fn both_pipelines_reconstruct_the_same_front_end() {
    let scene = Scene::gaussian_blobs(3).render(32, 32, 1);
    let (imager, codes) = code_image_of(32, &scene);
    // Full frame.
    let frame = imager.capture(&scene);
    let full = Decoder::for_frame(&frame)
        .unwrap()
        .reconstruct(&frame)
        .unwrap();
    let full_db = psnr(&codes, full.code_image(), 255.0);
    // Block based on the same code image.
    let bcs = BlockCs::new(32, 32, 8, 0.4, 0xB10C).unwrap();
    let bframe = bcs.capture_codes(&imager.ideal_codes(&scene));
    let block = bcs.reconstruct(&bframe).unwrap();
    let block_db = psnr(&codes, &block, 255.0);
    assert!(full_db > 20.0, "full-frame too weak: {full_db:.1} dB");
    assert!(block_db > 20.0, "block too weak: {block_db:.1} dB");
}

#[test]
fn block_samples_are_narrower_but_more_numerous_in_bits() {
    // Eq. (1) on both organizations: 14-bit block samples vs 20-bit
    // full-frame samples at 64×64 — and the paper's point that the
    // block organization trades dynamic range for reconstruction
    // quality, not wire bits (same K ⇒ fewer bits for blocks).
    use tepics::core::params::eq1_sample_bits;
    assert_eq!(eq1_sample_bits(8, 8, 8), 14);
    assert_eq!(eq1_sample_bits(8, 64, 64), 20);
    let bcs = BlockCs::new(64, 64, 8, 0.4, 1).unwrap();
    let codes = ImageF64::new(64, 64, 100.0);
    let bframe = bcs.capture(&codes);
    let block_bits = bframe.payload_bits(8);
    let full_bits = bframe.samples.len() as u64 * 20;
    assert!(block_bits < full_bits);
}

#[test]
fn full_frame_gains_at_very_low_ratios_on_global_content() {
    // The full-frame advantage appears when the scene's structure is
    // *global* rather than block-local. Period-6 bars need a handful of
    // global DCT harmonics — trivially covered by ~60 full-frame
    // samples — but inside an 8×8 block they are misaligned stripes
    // needing more than the ~4 per-block measurements R = 0.06 affords.
    // (On smooth scenes the block baseline's per-block mean estimate is
    // an excellent downsampler and *wins*; the ffvb experiment maps both
    // regimes.)
    let side = 32;
    let scene = Scene::Bars { period: 6 }.render(side, side, 0);
    let imager = CompressiveImager::builder(side, side)
        .ratio(0.06)
        .seed(5)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let codes = imager.ideal_codes(&scene).to_code_f64();
    let frame = imager.capture(&scene);
    let full = Decoder::for_frame(&frame)
        .unwrap()
        .reconstruct(&frame)
        .unwrap();
    let full_db = psnr(&codes, full.code_image(), 255.0);
    let bcs = BlockCs::new(side, side, 8, 0.06, 5).unwrap();
    let bframe = bcs.capture(&codes);
    let block = bcs.reconstruct(&bframe).unwrap();
    let block_db = psnr(&codes, &block, 255.0);
    assert!(
        full_db > block_db,
        "at R=0.06 on global bars, full-frame ({full_db:.1} dB) should beat 8×8 blocks ({block_db:.1} dB)"
    );
}
