//! Threaded companion to `zero_alloc.rs`: a *process-wide* counting
//! allocator proves that the warm **pooled** tiled-decode path — tiles
//! fanned across the persistent worker pool — reaches an allocation
//! steady state, extending the serial zero-alloc guarantee to the
//! threaded path.
//!
//! Differences from `zero_alloc.rs` are deliberate:
//!
//! * The counter is a global `AtomicU64`, not a thread-local: pool
//!   workers allocate on *their* threads, and a thread-local counter on
//!   the test thread would be blind to them.
//! * One `#[test]` only. The harness runs sibling tests on other
//!   threads concurrently, and any of their allocations would land in
//!   this global counter; a single test keeps the process quiet during
//!   the measured window.
//!
//! The method is the same differential one: after priming (operator
//! cache, parser buffer, executor workspaces via
//! [`DecodeSession::prewarm`]), two consecutive warm pushes of the same
//! frame must cost the *identical* number of allocations — anything
//! that grows with session age or re-warms per frame would break the
//! equality.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tepics::prelude::*;

struct CountingAllocator;

/// Allocations (alloc + alloc_zeroed + realloc) observed process-wide,
/// including on pool worker threads.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns (process-wide allocations during `f`, result).
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// The warm *pooled* tiled-decode path reaches an allocation steady
/// state: with the operator cache, the parser buffer, and every
/// executor's sticky per-geometry workspace warm, consecutive
/// frame-aligned pushes of the same frame cost the identical number of
/// allocations — and stay bit-identical.
#[test]
fn warm_pooled_tiled_decode_reaches_allocation_steady_state() {
    let imager = CompressiveImager::builder_for(FrameGeometry::new(40, 28))
        .tiling(TileConfig::new(16).overlap(4))
        .ratio(0.35)
        .seed(0x71D3)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    // One stream, eight frames of the same scene, snapshotted after
    // each capture so frame-aligned chunks can be replayed like a live
    // receiver draining the wire.
    let scene = Scene::gaussian_blobs(3).render(40, 28, 7);
    let mut enc = EncodeSession::new(imager).unwrap();
    let mut warm_record = None;
    let mut cuts = vec![0usize];
    for _ in 0..8 {
        let records = enc.capture(&scene).unwrap();
        if warm_record.is_none() {
            warm_record = Some(records[0].clone());
        }
        cuts.push(enc.to_bytes().len());
    }
    let bytes = enc.into_bytes();
    let chunk = |i: usize| &bytes[cuts[i]..cuts[i + 1]];

    let mut session = DecodeSession::new();
    // Two executors (this thread + one pool worker): the smallest
    // configuration that exercises the cross-thread path.
    session.threads(2);
    // Deterministic executor warm-up: the broadcast pins one solve to
    // every executor, so each holds its per-geometry workspace before
    // anything is measured (no luck-of-the-scheduler cold slots).
    session.prewarm(warm_record.as_ref().unwrap()).unwrap();
    // Priming pushes: populate the operator cache and settle the stream
    // parser's buffer, whose capacity grows amortized until its
    // compaction threshold.
    for i in 0..6 {
        assert_eq!(session.push_bytes(chunk(i)).unwrap().len(), 1);
    }
    let (seventh, out_a) = count_allocs(|| session.push_bytes(chunk(6)).unwrap());
    let (eighth, out_b) = count_allocs(|| session.push_bytes(chunk(7)).unwrap());
    assert_eq!(
        out_a[0].reconstruction, out_b[0].reconstruction,
        "warm pooled decodes of the same frame must stay bit-identical"
    );
    assert_eq!(
        seventh, eighth,
        "warm pooled tiled decode drifts: {seventh} then {eighth} allocations"
    );
}
