//! Integration: the tiled decode path — geometry-first capture through
//! v2 wire streams, stitched reconstruction invariance across tile
//! sizes and thread counts, v1 backward compatibility, hostile-header
//! robustness, and operator-cache byte budgets under tiled load.

use tepics::core::stream::{StreamParser, STREAM_VERSION, STREAM_VERSION_TILED};
use tepics::prelude::*;
use tepics::util::SplitMix64;

/// A 40×28 imager tiled into `tile`-px squares with `overlap`.
fn tiled_imager(tile: usize, overlap: usize, seed: u64) -> CompressiveImager {
    CompressiveImager::builder_for(FrameGeometry::new(40, 28))
        .tiling(TileConfig::new(tile).overlap(overlap))
        .ratio(0.35)
        .seed(seed)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
}

/// Encodes `scene` through `imager` and returns the stream bytes.
fn stream_bytes(imager: CompressiveImager, scene: &ImageF64) -> Vec<u8> {
    let mut enc = EncodeSession::new(imager).unwrap();
    enc.capture(scene).unwrap();
    enc.into_bytes()
}

/// The stitched decode must be acceptable at every tile size: the tile
/// grid is an internal decomposition, not a quality knob the caller has
/// to tune. (Exact equality across tile sizes is not expected — each
/// grid solves different subproblems — but every grid must clear the
/// same quality bar on the same scene.)
#[test]
fn stitched_quality_holds_across_tile_sizes() {
    let scene = Scene::gaussian_blobs(3).render(64, 48, 11);
    for (tile, overlap) in [(16, 4), (32, 8)] {
        let im = CompressiveImager::builder_for(FrameGeometry::new(64, 48))
            .tiling(TileConfig::new(tile).overlap(overlap))
            .ratio(0.35)
            .seed(0x71DE)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        let truth = im.ideal_codes(&scene).to_code_f64();
        let bytes = stream_bytes(im, &scene);
        let mut dec = DecodeSession::new();
        let decoded = dec.push_bytes(&bytes).unwrap();
        assert_eq!(decoded.len(), 1, "tile {tile}: one stitched frame");
        let recon = decoded[0].reconstruction.code_image();
        assert_eq!((recon.width(), recon.height()), (64, 48));
        let db = psnr(&truth, recon, 255.0);
        assert!(db > 20.0, "tile {tile} overlap {overlap}: {db:.1} dB");
    }
}

/// Stitched decodes are bit-identical at every thread count — the
/// acceptance property of the block-parallel engine.
#[test]
fn stitched_decode_is_thread_count_invariant() {
    let scene = Scene::natural_like().render(40, 28, 3);
    let bytes = stream_bytes(tiled_imager(16, 4, 0xB17), &scene);
    let mut serial = DecodeSession::new();
    let reference = serial.push_bytes(&bytes).unwrap();
    for threads in [2, 3, 8] {
        let mut dec = DecodeSession::new();
        dec.threads(threads);
        let decoded = dec.push_bytes(&bytes).unwrap();
        assert_eq!(decoded, reference, "threads = {threads} diverged");
    }
}

/// Untiled sessions still speak version-1 streams byte for byte: the
/// tile extension is opt-in, and old receivers never see it.
#[test]
fn untiled_streams_remain_version_one() {
    let im = CompressiveImager::builder(16, 16)
        .ratio(0.35)
        .seed(9)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let scene = Scene::gaussian_blobs(2).render(16, 16, 4);
    let bytes = stream_bytes(im, &scene);
    assert_eq!(bytes[4], STREAM_VERSION, "untiled streams stay v1");

    // And a v1 stream decodes through a session with no tile layout.
    let mut dec = DecodeSession::new();
    let decoded = dec.push_bytes(&bytes).unwrap();
    assert_eq!(decoded.len(), 1);
    assert!(dec.tile_layout().is_none());
}

/// Tiled streams carry the v2 marker and replay their layout on the
/// receiver without any out-of-band configuration.
#[test]
fn tiled_streams_replay_the_layout_from_the_header() {
    let scene = Scene::gaussian_blobs(2).render(40, 28, 8);
    let bytes = stream_bytes(tiled_imager(16, 4, 0x40), &scene);
    assert_eq!(bytes[4], STREAM_VERSION_TILED);
    let mut parser = StreamParser::new();
    parser.push_bytes(&bytes);
    while parser.next_frame().unwrap().is_some() {}
    let layout = parser.tile_layout().expect("layout decoded from header");
    assert_eq!((layout.frame().width(), layout.frame().height()), (40, 28));
    assert_eq!((layout.tile_width(), layout.tile_height()), (16, 16));
    assert_eq!(layout.overlap(), 4);
}

/// Hostile-input property: random corruption of a tiled stream must
/// yield `MalformedFrame` (or a clean parse of the unharmed prefix) —
/// never a panic, whatever bytes arrive.
#[test]
fn corrupted_tiled_headers_error_instead_of_panicking() {
    let scene = Scene::gaussian_blobs(2).render(40, 28, 1);
    let pristine = stream_bytes(tiled_imager(16, 4, 0xE7), &scene);
    let mut rng = SplitMix64::new(0xFADE);
    // Parser level: random byte smashes, biased toward the 30-byte v2
    // header, must never panic — only fail as MalformedFrame or parse a
    // consistent stream.
    for _ in 0..2000 {
        let mut bytes = pristine.clone();
        for _ in 0..(1 + rng.next_u64() % 3) {
            let target = if rng.next_bool() {
                (rng.next_u64() as usize) % 30.min(bytes.len())
            } else {
                (rng.next_u64() as usize) % bytes.len()
            };
            bytes[target] = rng.next_u64() as u8;
        }
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        while let Ok(Some(_)) = parser.next_frame() {}
    }
    // Session level (full decodes are expensive, so fewer rounds):
    // header-region corruption through the public byte entry point.
    for _ in 0..20 {
        let mut bytes = pristine.clone();
        let target = (rng.next_u64() as usize) % 30;
        bytes[target] = rng.next_u64() as u8;
        let mut dec = DecodeSession::new();
        // Any Ok/Err outcome is fine; panics fail the test.
        let _ = dec.push_bytes(&bytes);
    }
    // Truncation at every prefix of the header is equally panic-free.
    for len in 0..pristine.len().min(64) {
        let mut dec = DecodeSession::new();
        let _ = dec.push_bytes(&pristine[..len]);
    }
}

/// A byte-budgeted cache decodes a multi-geometry workload without ever
/// exceeding its budget, and the evicted-and-rebuilt decodes are
/// bit-identical to an unbounded cache's.
#[test]
fn bounded_cache_respects_budget_and_stays_bit_identical() {
    let scenes: Vec<(usize, ImageF64)> = [16usize, 32, 16, 32, 16, 32]
        .iter()
        .map(|&side| (side, Scene::gaussian_blobs(2).render(side, side, 7)))
        .collect();
    let streams: Vec<Vec<u8>> = scenes
        .iter()
        .map(|(side, scene)| {
            let im = CompressiveImager::builder(*side, *side)
                .ratio(0.35)
                .seed(0xCAFE)
                .fidelity(Fidelity::Functional)
                .build()
                .unwrap();
            stream_bytes(im, scene)
        })
        .collect();

    // Reference decodes, each geometry through its own unbounded cache
    // so its full working set can be measured.
    let mut working_sets = std::collections::BTreeMap::new();
    let reference: Vec<_> = streams
        .iter()
        .zip(&scenes)
        .map(|(bytes, (side, _))| {
            let cache = OperatorCache::shared_with(CacheConfig::unbounded());
            let mut dec = DecodeSession::with_cache(cache.clone());
            let decoded = dec.push_bytes(bytes).unwrap();
            working_sets.insert(*side, cache.resident_bytes());
            decoded
        })
        .collect();

    // Budget fits either geometry's working set alone but not both, so
    // the 16 → 32 → 16 → … rotation must evict on every switch.
    let budget = working_sets.values().max().unwrap() + 1024;
    assert!(
        budget < working_sets.values().sum::<usize>(),
        "geometries too small to overflow the budget: {working_sets:?}"
    );
    let bounded = OperatorCache::shared_with(CacheConfig::new().byte_budget(budget));
    for (bytes, expected) in streams.iter().zip(&reference) {
        let mut dec = DecodeSession::with_cache(bounded.clone());
        let decoded = dec.push_bytes(bytes).unwrap();
        assert_eq!(&decoded, expected, "bounded cache changed a decode");
        assert!(
            bounded.resident_bytes() <= budget,
            "resident {} exceeds budget {budget}",
            bounded.resident_bytes()
        );
    }
    assert!(
        bounded.stats().evictions > 0,
        "the rotating workload should overflow a {budget}-byte budget"
    );
}
