//! Integration: the persistent decode executor — the pooled tiled
//! decode path must be observationally indistinguishable from the
//! serial and spawn-per-call paths at every thread count, whether
//! frames arrive one push at a time or pipeline through a single push,
//! whether tiles are all present or erased by wire damage, and whether
//! the session was prewarmed or not. Only throughput may differ.

use tepics::core::stream::RESILIENT_TILED_HEADER_BYTES;
use tepics::core::FaultInjector;
use tepics::prelude::*;

/// A 40×28 imager in shifted 16-px tiles with 4-px overlap (9 tiles).
fn tiled_imager(seed: u64) -> CompressiveImager {
    CompressiveImager::builder_for(FrameGeometry::new(40, 28))
        .tiling(TileConfig::new(16).overlap(4))
        .ratio(0.35)
        .seed(seed)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
}

/// Captures `n` distinct frames into one compact tiled stream,
/// snapshotting the byte length after each capture so the stream can be
/// replayed in frame-aligned chunks.
fn tiled_stream(seed: u64, n: usize) -> (Vec<u8>, Vec<usize>) {
    let mut enc = EncodeSession::new(tiled_imager(seed)).unwrap();
    let mut cuts = vec![0usize];
    for i in 0..n {
        let scene = Scene::gaussian_blobs(3).render(40, 28, seed ^ i as u64);
        enc.capture(&scene).unwrap();
        cuts.push(enc.to_bytes().len());
    }
    (enc.into_bytes(), cuts)
}

/// Drains one configured session over `bytes` in a single push.
fn drain(
    bytes: &[u8],
    configure: impl FnOnce(&mut DecodeSession),
) -> (Vec<DecodedFrame>, DecodeReport) {
    let mut dec = DecodeSession::new();
    configure(&mut dec);
    let mut frames = dec.push_bytes(bytes).unwrap();
    frames.extend(dec.finish().unwrap());
    (frames, dec.report())
}

/// The acceptance property of the executor rework: pooled and
/// spawn-per-call decodes are bit-identical to the serial reference at
/// every thread count, frames and report alike.
#[test]
fn executors_are_bit_identical_at_every_thread_count() {
    let (bytes, _) = tiled_stream(0x9001, 3);
    let reference = drain(&bytes, |d| {
        d.threads(1);
    });
    for threads in [2, 4, 7] {
        for executor in [DecodeExecutor::Pooled, DecodeExecutor::SpawnPerCall] {
            let got = drain(&bytes, |d| {
                d.threads(threads).executor(executor);
            });
            assert_eq!(got, reference, "threads {threads}, {executor:?} diverged");
        }
    }
}

/// Frame pipelining is a scheduling detail, not a semantics change: a
/// single push completing several tile groups must yield exactly the
/// frames (same indices, same pixels, same report) of frame-aligned
/// pushes through the same session config.
#[test]
fn single_push_pipelining_matches_frame_aligned_pushes() {
    let (bytes, cuts) = tiled_stream(0x919E, 4);

    let (pipelined, pipelined_report) = drain(&bytes, |d| {
        d.threads(4);
    });
    assert_eq!(pipelined.len(), 4);

    let mut chunked_session = DecodeSession::new();
    chunked_session.threads(4);
    let mut chunked = Vec::new();
    for i in 0..4 {
        let got = chunked_session
            .push_bytes(&bytes[cuts[i]..cuts[i + 1]])
            .unwrap();
        assert_eq!(got.len(), 1, "chunk {i} must complete exactly one frame");
        chunked.extend(got);
    }
    chunked.extend(chunked_session.finish().unwrap());

    assert_eq!(pipelined, chunked);
    assert_eq!(pipelined_report, chunked_session.report());
    for (i, frame) in pipelined.iter().enumerate() {
        assert_eq!(frame.index, i, "stream order must survive pipelining");
    }
}

/// Erasure handling rides through the pool unchanged: a wire-damaged
/// resilient stream degrades to the same frames and the same ledger on
/// every executor, under both lenient policies.
#[test]
fn erased_tiles_decode_identically_on_every_executor() {
    let mut enc = EncodeSession::with_profile(tiled_imager(0xE5A), WireProfile::Resilient).unwrap();
    for i in 0..3 {
        let scene = Scene::gaussian_blobs(3).render(40, 28, 60 + i);
        enc.capture(&scene).unwrap();
    }
    let mut dirty = enc.into_bytes();
    let flipped = FaultInjector::new(7).flip_bits_after(
        &mut dirty,
        RESILIENT_TILED_HEADER_BYTES,
        0.001 / 8.0,
    );
    assert!(flipped > 0, "fault injection must actually damage the wire");

    for policy in [ErasurePolicy::NeighborBlend, ErasurePolicy::FlaggedZero] {
        let reference = drain(&dirty, |d| {
            d.threads(1).erasure_policy(policy);
        });
        assert!(
            reference.1.tiles_erased > 0,
            "{policy:?}: damage must erase at least one tile for this test to bite"
        );
        for executor in [DecodeExecutor::Pooled, DecodeExecutor::SpawnPerCall] {
            let got = drain(&dirty, |d| {
                d.threads(4).erasure_policy(policy).executor(executor);
            });
            assert_eq!(got, reference, "{policy:?} via {executor:?} diverged");
        }
    }
}

/// [`DecodeSession::prewarm`] is a results no-op: it may only move
/// work earlier in time (workspace warm-up), never change a pixel, an
/// index, or the report.
#[test]
fn prewarm_does_not_change_results() {
    let im = tiled_imager(0x9E4A);
    let scene = Scene::gaussian_blobs(3).render(40, 28, 21);
    let mut enc = EncodeSession::new(im).unwrap();
    let records = enc.capture(&scene).unwrap();
    let bytes = enc.into_bytes();

    let cold = drain(&bytes, |d| {
        d.threads(4);
    });
    let warm = drain(&bytes, |d| {
        d.threads(4);
        d.prewarm(&records[0]).unwrap();
    });
    assert_eq!(warm, cold);
}

/// A single tiled stream through the batch engine regains its inner
/// tile parallelism on the pool — and the outcome is exactly what a
/// directly driven session produces.
#[test]
fn batch_single_stream_matches_direct_session_decode() {
    let (bytes, _) = tiled_stream(0xBA7C, 3);
    let (frames, report) = drain(&bytes, |d| {
        d.threads(4);
    });

    let outcome = BatchRunner::with_threads(4).decode_streams(&[&bytes[..]]);
    assert_eq!(outcome.outcomes.len(), 1);
    assert_eq!(outcome.failed_streams(), 0);
    let stream = &outcome.outcomes[0];
    assert!(stream.error.is_none());
    assert_eq!(stream.frames, frames);
    assert_eq!(stream.report, report);
}
