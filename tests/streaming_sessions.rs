//! Integration: the session API — stream round-trip parity with the
//! frame API, container overhead, operator-cache behavior, and
//! batch-engine determinism for whole streams.

use tepics::core::stream::{FRAME_RECORD_BYTES, STREAM_HEADER_BYTES};
use tepics::prelude::*;

fn imager(side: usize, seed: u64) -> CompressiveImager {
    CompressiveImager::builder(side, side)
        .ratio(0.35)
        .seed(seed)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap()
}

/// The acceptance property: a scene sequence encoded via
/// `EncodeSession::to_bytes` and decoded via `DecodeSession::push_bytes`
/// round-trips bit-identically to per-frame `capture`/`reconstruct`.
#[test]
fn session_stream_matches_per_frame_capture_reconstruct() {
    let im = imager(24, 0xDA7E);
    let scenes: Vec<ImageF64> = (0..5)
        .map(|i| Scene::gaussian_blobs(3).render(24, 24, i))
        .collect();

    // Frame API: capture, serialize, parse, cold-reconstruct each frame.
    let mut per_frame = Vec::new();
    for scene in &scenes {
        let frame = im.capture(scene);
        let received = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
        let recon = Decoder::for_frame(&received)
            .unwrap()
            .reconstruct(&received)
            .unwrap();
        per_frame.push(recon);
    }

    // Session API: one stream, one decode session.
    let mut enc = EncodeSession::new(im).unwrap();
    for scene in &scenes {
        enc.capture(scene).unwrap();
    }
    let mut dec = DecodeSession::new();
    let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();

    assert_eq!(decoded.len(), per_frame.len());
    for (d, cold) in decoded.iter().zip(&per_frame) {
        assert_eq!(
            d.reconstruction, *cold,
            "frame {}: session decode diverged from per-frame decode",
            d.index
        );
    }
}

/// The container's whole point: one stream header + compact per-frame
/// records must undercut N repeated 27-byte frame headers (wire-bits
/// accounting, verified arithmetically and against the serialization).
#[test]
fn stream_header_overhead_beats_repeated_frame_headers() {
    let im = imager(16, 77);
    let scenes: Vec<ImageF64> = (0..6)
        .map(|i| Scene::natural_like().render(16, 16, i))
        .collect();
    let mut enc = EncodeSession::new(im.clone()).unwrap();
    let mut frame_codec_bits = 0;
    let mut payload_bytes = 0;
    for scene in &scenes {
        let records = enc.capture(scene).unwrap();
        let [frame] = records.as_slice() else {
            panic!("untiled capture yields one record");
        };
        assert_eq!(
            frame.wire_bits(),
            frame.to_bytes().len() * 8,
            "arithmetic wire_bits must match serialization"
        );
        frame_codec_bits += frame.wire_bits();
        payload_bytes += frame.payload_bits().div_ceil(8);
    }
    // Exact container accounting…
    assert_eq!(
        enc.wire_bits(),
        (STREAM_HEADER_BYTES + scenes.len() * FRAME_RECORD_BYTES + payload_bytes) * 8
    );
    assert_eq!(enc.wire_bits(), enc.to_bytes().len() * 8);
    // …and the headline inequality.
    assert!(
        enc.wire_bits() < frame_codec_bits,
        "stream {} bits must beat per-frame {} bits",
        enc.wire_bits(),
        frame_codec_bits
    );
}

/// Decoding ≥4 same-seed frames through one session builds Φ once; the
/// remaining frames are served warm — the deterministic half of the
/// cache claim (the wall-clock half is asserted by the `batch`
/// experiment's warm-vs-cold audit).
#[test]
fn one_operator_build_serves_a_same_seed_stream() {
    let im = imager(16, 0x5EED);
    let mut enc = EncodeSession::new(im).unwrap();
    for i in 0..4 {
        enc.capture(&Scene::gaussian_blobs(2).render(16, 16, i))
            .unwrap();
    }
    let mut dec = DecodeSession::new();
    let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
    assert_eq!(decoded.len(), 4);
    let stats = dec.cache().stats();
    assert_eq!(stats.misses, 1, "Φ must be built exactly once");
    assert_eq!(stats.hits, 3, "frames 2–4 must decode warm");
}

/// Byte-at-a-time delivery: frames complete exactly when their last
/// byte arrives, and the result matches one-shot decoding.
#[test]
fn chunked_ingestion_is_equivalent_to_one_shot() {
    let im = imager(16, 31);
    let mut enc = EncodeSession::new(im).unwrap();
    for i in 0..3 {
        enc.capture(&Scene::gaussian_blobs(2).render(16, 16, i))
            .unwrap();
    }
    let bytes = enc.into_bytes();

    let mut one_shot = DecodeSession::new();
    let expected = one_shot.push_bytes(&bytes).unwrap();

    let mut chunked = DecodeSession::new();
    let mut got = Vec::new();
    for chunk in bytes.chunks(13) {
        got.extend(chunked.push_bytes(chunk).unwrap());
    }
    assert_eq!(got, expected);
    assert_eq!(chunked.buffered_bytes(), 0);
}

/// Delta mode over the wire: a static scene sequence reconstructs
/// identically frame to frame, and the delta frames are flagged.
#[test]
fn delta_mode_streams_static_scenes_for_free() {
    let im = imager(24, 0xF1DE);
    let scene = Scene::gaussian_blobs(3).render(24, 24, 5);
    let mut enc = EncodeSession::new(im).unwrap();
    for _ in 0..3 {
        enc.capture(&scene).unwrap();
    }
    let mut dec = DecodeSession::new();
    dec.delta_mode(20, 0);
    let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
    assert_eq!(decoded.len(), 3);
    assert!(decoded[0].is_key);
    assert!(!decoded[1].is_key && !decoded[2].is_key);
    for d in &decoded[1..] {
        assert_eq!(
            d.reconstruction.code_image(),
            decoded[0].reconstruction.code_image(),
            "zero delta must not move the reconstruction"
        );
    }
}

/// Whole streams on the batch engine: `decode_streams` results are
/// bit-identical at any thread count (the PR-1 guarantee, extended from
/// single frames to sequences).
#[test]
fn batch_stream_decoding_is_thread_count_invariant() {
    let im = imager(16, 0xBA7C);
    let streams: Vec<Vec<u8>> = (0..5)
        .map(|s| {
            let mut enc = EncodeSession::new(im.clone()).unwrap();
            for i in 0..2 {
                enc.capture(&Scene::gaussian_blobs(3).render(16, 16, s * 7 + i))
                    .unwrap();
            }
            enc.into_bytes()
        })
        .collect();
    let serial = BatchRunner::with_threads(1).decode_streams(&streams);
    let parallel = BatchRunner::with_threads(8).decode_streams(&streams);
    assert_eq!(serial, parallel);
    assert_eq!(serial.failed_streams(), 0);
    assert_eq!(serial.total_frames(), 10);
    // And the shared cache means one build for the whole batch.
    let runner = BatchRunner::with_threads(4);
    runner.decode_streams(&streams);
    assert_eq!(runner.cache().stats().misses, 1);
}

/// Delta-mode parity between the two session entry points: parsed
/// frames pushed one at a time (`push_frame`) reproduce a delta-mode
/// session fed raw stream bytes (`push_bytes`) bit for bit. (This is
/// the contract the removed `SequenceDecoder` shim used to bridge.)
#[test]
fn delta_session_frame_and_byte_entry_points_agree() {
    let im = imager(24, 0x0DD);
    let mut enc = EncodeSession::new(im.clone()).unwrap();
    let mut frames = Vec::new();
    for i in 0..3 {
        let mut scene = Scene::gaussian_blobs(2).render(24, 24, 9);
        scene.set(4 + i, 12, 0.9);
        frames.extend(enc.capture(&scene).unwrap());
    }
    let mut by_frame = DecodeSession::new();
    by_frame.delta_mode(25, 0);
    let frame_codes: Vec<ImageF64> = frames
        .iter()
        .map(|f| {
            by_frame
                .push_frame(f)
                .unwrap()
                .reconstruction
                .code_image()
                .clone()
        })
        .collect();

    let mut session = DecodeSession::new();
    session.delta_mode(25, 0);
    let decoded = session.push_bytes(&enc.to_bytes()).unwrap();
    assert_eq!(decoded.len(), frame_codes.len());
    for (d, codes) in decoded.iter().zip(&frame_codes) {
        assert_eq!(d.reconstruction.code_image(), codes);
    }
}
