//! Integration: the full paper-prototype system, 64×64, end to end.

use tepics::prelude::*;

/// The headline loop at the paper's own scale: 64×64 array, R just
/// below the 0.4 break-even (Sect. III.B requires R < N_b/N_B strictly —
/// at exactly 0.4 the 20-bit samples tie the 8-bit raw readout),
/// Rule-30 strategy, event-accurate capture, wire round-trip, FISTA +
/// debias reconstruction.
#[test]
fn paper_prototype_end_to_end() {
    let scene = Scene::gaussian_blobs(4).render(64, 64, 2024);
    let imager = CompressiveImager::builder(64, 64)
        .ratio(0.38)
        .seed(0xDA7E_2018)
        .build()
        .unwrap();
    let (frame, stats) = imager.capture_with_stats(&scene);
    assert_eq!(frame.sample_count(), (0.38f64 * 4096.0).ceil() as usize);
    assert_eq!(frame.header.sample_bits, 20, "Eq. (1): 8 + log2(4096)");
    // Event protocol must have seen real contention at this scale but
    // never an accumulator overflow (Eq. (1) is exact).
    assert!(stats.total_pulses > 1_000_000);
    assert!(stats.queued_pulses > 0);
    assert_eq!(stats.column_overflows, 0);
    assert_eq!(stats.sample_overflows, 0);

    // Wire round-trip.
    let bytes = frame.to_bytes();
    assert!(
        (bytes.len() * 8) < 4096 * 8,
        "R=0.38 at 20 bits must beat the 8-bit raw readout"
    );
    let received = CompressedFrame::from_bytes(&bytes).unwrap();
    assert_eq!(received, frame);

    // Reconstruct (iteration budget trimmed for CI runtimes).
    let mut decoder = Decoder::for_frame(&received).unwrap();
    decoder.algorithm(SolverKind::Fista {
        lambda_ratio: 0.02,
        max_iter: 150,
        debias: true,
    });
    let recon = decoder.reconstruct(&received).unwrap();
    let truth = imager.ideal_codes(&scene).to_code_f64();
    let db = psnr(&truth, recon.code_image(), 255.0);
    assert!(db > 24.0, "64×64 end-to-end PSNR {db:.1} dB below floor");
}

/// Encoder and decoder must derive the *identical* measurement from the
/// seed: recomputing every sample from the decoder's rebuilt Φ and the
/// sensor's ideal codes reproduces the functional capture bit-for-bit.
#[test]
fn decoder_rebuilds_the_exact_measurement() {
    let scene = Scene::piecewise_smooth(4).render(32, 32, 9);
    let imager = CompressiveImager::builder(32, 32)
        .ratio(0.25)
        .seed(4242)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let frame = imager.capture(&scene);
    let decoder = Decoder::for_frame(&frame).unwrap();
    let phi = decoder.rebuild_measurement(frame.sample_count()).unwrap();
    let codes: Vec<f64> = imager.ideal_codes(&scene).to_code_f64().into_vec();
    let y = {
        use tepics::cs::LinearOperator;
        phi.apply_vec(&codes)
    };
    for (k, (&sample, yk)) in frame.samples.iter().zip(&y).enumerate() {
        assert_eq!(
            sample as f64, *yk,
            "sample {k} disagrees with the rebuilt measurement"
        );
    }
}

/// Different strategy kinds survive the wire and reconstruct.
#[test]
fn all_strategies_roundtrip_through_the_wire() {
    let scene = Scene::gaussian_blobs(2).render(16, 16, 5);
    for strategy in [
        StrategyKind::default_for(16, 16),
        StrategyKind::Lfsr { width: 24 },
        StrategyKind::Hadamard,
        StrategyKind::Bernoulli,
    ] {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.4)
            .strategy(strategy)
            .seed(77)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        let frame = imager.capture(&scene);
        let received = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(received.header.strategy, strategy);
        let recon = Decoder::for_frame(&received)
            .unwrap()
            .reconstruct(&received)
            .unwrap();
        assert!(
            recon.code_image().as_slice().iter().all(|v| v.is_finite()),
            "{strategy:?} produced non-finite output"
        );
    }
}

/// The compressed stream degrades gracefully: truncating samples (e.g.
/// a dropped packet tail) still reconstructs, just worse.
#[test]
fn truncated_sample_stream_degrades_gracefully() {
    let scene = Scene::gaussian_blobs(3).render(32, 32, 11);
    let imager = CompressiveImager::builder(32, 32)
        .ratio(0.45)
        .seed(31)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let frame = imager.capture(&scene);
    let truth = imager.ideal_codes(&scene).to_code_f64();
    let full_db = {
        let r = Decoder::for_frame(&frame)
            .unwrap()
            .reconstruct(&frame)
            .unwrap();
        psnr(&truth, r.code_image(), 255.0)
    };
    let mut cut = frame.clone();
    cut.samples.truncate(frame.sample_count() / 3);
    let cut_db = {
        let r = Decoder::for_frame(&cut).unwrap().reconstruct(&cut).unwrap();
        psnr(&truth, r.code_image(), 255.0)
    };
    assert!(
        cut_db > 10.0,
        "truncated stream collapsed entirely: {cut_db:.1} dB"
    );
    assert!(
        full_db > cut_db,
        "more samples must not hurt: full {full_db:.1} vs cut {cut_db:.1}"
    );
}
