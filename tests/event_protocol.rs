//! Integration: event-level behavior of the asynchronous readout.

use tepics::ca::{CaSource, ElementaryRule};
use tepics::imaging::Scene;
use tepics::sensor::{Fidelity, FrameReadout, SensorConfig};

fn ca_source(config: &SensorConfig, seed: u64) -> CaSource {
    CaSource::new(
        config.rows() + config.cols(),
        seed,
        ElementaryRule::RULE_30,
        128,
        1,
    )
}

/// When events are too short to ever collide, the event-accurate
/// simulation must equal the functional model exactly — the strongest
/// cross-validation between the two readout paths.
#[test]
fn event_accurate_equals_functional_without_contention() {
    let config = SensorConfig::builder(24, 24)
        .event_duration(1e-13)
        .release_delay(0.0)
        .build()
        .unwrap();
    for scene_seed in [1u64, 2, 3] {
        let scene = Scene::natural_like().render(24, 24, scene_seed);
        let functional = FrameReadout::new(config.clone(), Fidelity::Functional).capture(
            &scene,
            &mut ca_source(&config, 9),
            60,
        );
        let event = FrameReadout::new(config.clone(), Fidelity::EventAccurate).capture(
            &scene,
            &mut ca_source(&config, 9),
            60,
        );
        assert_eq!(functional.samples, event.samples, "seed {scene_seed}");
        assert_eq!(event.stats.missed_pulses, 0);
        assert_eq!(event.stats.error_fraction(), 0.0);
    }
}

/// Longer events mean more queueing and more LSB errors — the
/// serialization error must grow monotonically with event duration.
#[test]
fn code_errors_grow_with_event_duration() {
    let scene = Scene::Uniform(0.45).render(24, 24, 0); // max contention
    let mut last_err = -1.0;
    for duration in [1e-9, 20e-9, 80e-9] {
        let config = SensorConfig::builder(24, 24)
            .event_duration(duration)
            .build()
            .unwrap();
        let frame = FrameReadout::new(config.clone(), Fidelity::EventAccurate).capture(
            &scene,
            &mut ca_source(&config, 3),
            40,
        );
        let err = frame.stats.mean_error_lsb();
        assert!(
            err >= last_err,
            "mean LSB error fell from {last_err} to {err} at duration {duration}"
        );
        last_err = err;
    }
    assert!(
        last_err > 0.0,
        "80 ns events on a flat scene must show errors"
    );
}

/// The paper's design guarantee: the token protocol never loses a pulse
/// to contention — every selected, in-window pixel is counted exactly
/// once per sample.
#[test]
fn no_pulse_is_ever_dropped_by_arbitration() {
    let config = SensorConfig::builder(16, 16)
        .event_duration(100e-9) // brutal contention on purpose
        .build()
        .unwrap();
    let scene = Scene::Uniform(0.6).render(16, 16, 0);
    let functional = FrameReadout::new(config.clone(), Fidelity::Functional).capture(
        &scene,
        &mut ca_source(&config, 5),
        30,
    );
    let event = FrameReadout::new(config.clone(), Fidelity::EventAccurate).capture(
        &scene,
        &mut ca_source(&config, 5),
        30,
    );
    // Same number of pulses observed...
    assert_eq!(functional.stats.total_pulses, event.stats.total_pulses);
    // ...and any sample difference is from delays, not lost pulses: with
    // a bright flat scene nothing leaves the window even delayed, so
    // per-sample pulse accounting must match. Verify via missed counts.
    assert_eq!(event.stats.missed_pulses, 0);
    // Sample values may only *grow* under delay (counter is monotone).
    for (f, e) in functional.samples.iter().zip(&event.samples) {
        assert!(e >= f, "event sample {e} below functional {f}");
    }
}

/// Overflow detection: a deliberately undersized accumulator
/// configuration must be caught by the sticky flags, not silently wrap.
#[test]
fn undersized_widths_are_reported_not_wrapped() {
    // 4-bit counter on a 16-row column: column width = 4 + 4 = 8 bits,
    // worst case sum = 16 × 15 = 240 < 255 — fits. To force overflow we
    // need the sample accumulator: build a custom SampleAdd through the
    // tdc API instead.
    use tepics::sensor::tdc::{Conversion, SampleAdd};
    let tiny = SensorConfig::builder(4, 2).counter_bits(2).build().unwrap();
    let mut sa = SampleAdd::for_config(&tiny);
    for _ in 0..6 {
        sa.add(0, Conversion::Code(3)); // 18 > 4-bit column max 15
    }
    let word = sa.finish();
    assert!(word.column_overflow, "overflow must latch");
    // After reset the flag clears.
    sa.add(0, Conversion::Code(1));
    let word = sa.finish();
    assert!(!word.column_overflow);
}

/// Determinism across the whole stack: identical inputs give identical
/// frames, including under noise.
#[test]
fn noisy_event_capture_is_bit_reproducible() {
    let config = SensorConfig::builder(16, 16)
        .jitter_sigma(10e-9)
        .offset_sigma_volts(3e-3)
        .fpn_gain_sigma(0.01)
        .noise_seed(1234)
        .build()
        .unwrap();
    let scene = Scene::gaussian_blobs(2).render(16, 16, 6);
    let capture = |seed| {
        FrameReadout::new(config.clone(), Fidelity::EventAccurate).capture(
            &scene,
            &mut ca_source(&config, seed),
            25,
        )
    };
    assert_eq!(capture(8), capture(8));
    assert_ne!(capture(8).samples, capture(9).samples);
}
