//! Correctness guarantees for the fused `ΦᵀΨᵀ` / `ΨΦ` kernel engine.
//!
//! [`ComposedOperator`] silently dispatches to the one-pass fused
//! kernels whenever the measurement is row-streamed and the dictionary
//! is row-staged (the XOR measurement with DCT/Haar/identity
//! dictionaries — the decoder's entire operating envelope). These tests
//! pin the fusion to the semantics of the unfused two-pass composition:
//!
//! * fused apply/adjoint equal the explicit `Ψ then Φ` / `Φᵀ then Ψᵀ`
//!   reference within 1e-10 relative, across power-of-two and ragged
//!   geometries and every dictionary family (including the DC-pinned
//!   zero-mean wrapper);
//! * warm decodes through a reused workspace — which route every solver
//!   iteration through the fused kernels with donated scratch — stay
//!   bit-identical to cold decodes, for the full solver shootout set;
//! * the decode-session thread count remains bit-transparent.

use std::sync::Arc;

use tepics::cs::dictionary::ZeroMeanDictionary;
use tepics::cs::{
    ComposedOperator, Dct2dDictionary, Dictionary, Haar2dDictionary, IdentityDictionary,
    LinearOperator, XorMeasurement,
};
use tepics::prelude::*;
use tepics::recovery::SolverWorkspace;
use tepics::util::{BitVec, SplitMix64};

/// A random XOR measurement on an `m×n` image (row-major `m` rows).
fn xor_phi(m: usize, n: usize, k: usize, rng: &mut SplitMix64) -> XorMeasurement {
    let patterns: Vec<BitVec> = (0..k)
        .map(|_| BitVec::from_bools((0..m + n).map(|_| rng.next_bool())))
        .collect();
    XorMeasurement::from_patterns(m, n, patterns)
}

fn assert_close(got: &[f64], want: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        assert!(
            (g - w).abs() <= tol * scale,
            "{what}[{i}]: fused {g} vs reference {w}"
        );
    }
}

/// Fused composed apply/adjoint equal the explicit two-pass reference
/// within 1e-10 relative, across pow2 and non-pow2 geometries and every
/// dictionary family the decoder can select.
#[test]
fn fused_composition_matches_two_pass_reference() {
    let mut rng = SplitMix64::new(0xF05E);
    // (rows, cols): square pow2, ragged even, odd/prime, wide, tall.
    for &(m, n) in &[(16, 16), (12, 10), (17, 13), (8, 32), (32, 8), (1, 7)] {
        let k = (m * n / 4).max(2);
        let phi = xor_phi(m, n, k, &mut rng);
        let dicts: Vec<(&str, Box<dyn Dictionary>)> = vec![
            ("dct", Box::new(Dct2dDictionary::new(n, m))),
            (
                "dct-zeromean",
                Box::new(ZeroMeanDictionary::new(Dct2dDictionary::new(n, m), 0)),
            ),
            ("haar", Box::new(Haar2dDictionary::new(n, m))),
            (
                "haar-zeromean",
                Box::new(ZeroMeanDictionary::new(Haar2dDictionary::new(n, m), 0)),
            ),
            ("identity", Box::new(IdentityDictionary::new(m * n))),
        ];
        for (name, dict) in &dicts {
            let a = ComposedOperator::new(&phi, dict.as_ref());
            let alpha: Vec<f64> = (0..m * n).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
            let y: Vec<f64> = (0..k).map(|_| rng.next_f64() * 100.0 - 50.0).collect();
            // Reference: the unfused composition, stage by stage.
            let fwd_ref = phi.apply_vec(&dict.synthesize_vec(&alpha));
            let adj_ref = dict.analyze_vec(&phi.apply_adjoint_vec(&y));
            let what = format!("{m}x{n} {name}");
            assert_close(
                &a.apply_vec(&alpha),
                &fwd_ref,
                1e-10,
                &format!("{what} apply"),
            );
            assert_close(
                &a.apply_adjoint_vec(&y),
                &adj_ref,
                1e-10,
                &format!("{what} adjoint"),
            );
        }
    }
}

/// Warm decodes through one reused workspace — the path that runs every
/// solver iteration through the fused kernels with donated scratch —
/// are bit-identical to cold decodes, for every solver in the shootout
/// set and every dictionary family.
#[test]
fn warm_fused_decode_is_bit_identical_to_cold_for_all_solvers() {
    let im = CompressiveImager::builder(16, 16)
        .ratio(0.4)
        .seed(0xF0)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let scene = Scene::gaussian_blobs(2).render(16, 16, 5);
    let frame = im.capture(&scene);
    for dict in [
        DictionaryKind::Dct2d,
        DictionaryKind::Haar2d,
        DictionaryKind::Identity,
    ] {
        for alg in SolverKind::shootout_set(frame.samples.len()) {
            let mut dec = Decoder::for_frame(&frame).unwrap();
            dec.dictionary(dict).algorithm(alg);
            let cold = dec.reconstruct(&frame).unwrap();
            let mut ws = SolverWorkspace::new();
            dec.reconstruct_with(&frame, &mut ws).unwrap(); // warm the buffers
            let warm = dec.reconstruct_with(&frame, &mut ws).unwrap();
            assert_eq!(
                cold, warm,
                "{dict:?}/{alg:?}: warm fused decode differs from cold"
            );
        }
    }
}

/// The decode-session worker count stays bit-transparent on the fused
/// path: the same stream decoded serially and with a thread pool yields
/// identical reconstructions.
#[test]
fn threaded_session_decode_is_bit_identical_on_fused_path() {
    let im = CompressiveImager::builder(16, 16)
        .ratio(0.35)
        .seed(0x7B)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let mut enc = EncodeSession::new(im).unwrap();
    for i in 0..4 {
        let scene = Scene::gaussian_blobs(2).render(16, 16, i);
        enc.capture(&scene).unwrap();
    }
    let bytes = enc.into_bytes();
    let decode = |threads: usize| {
        let mut session = DecodeSession::new();
        session.threads(threads);
        let frames = session.push_bytes(&bytes).unwrap();
        frames
            .into_iter()
            .map(|f| f.reconstruction)
            .collect::<Vec<_>>()
    };
    let serial = decode(1);
    let pooled = decode(3);
    assert_eq!(serial.len(), 4);
    assert_eq!(serial, pooled, "thread count must be bit-transparent");
}

/// The fused dispatch actually engages on the decoder's envelope: both
/// hooks report ready for the XOR measurement with each decoder
/// dictionary. (Guards the wiring, so a refactor cannot silently fall
/// back to the two-pass path and rot the fused kernels.)
#[test]
fn decoder_envelope_qualifies_for_fusion() {
    let mut rng = SplitMix64::new(0xD15);
    let phi = xor_phi(16, 16, 32, &mut rng);
    assert!(phi.row_streamed().is_some(), "XOR must be row-streamed");
    let dct = ZeroMeanDictionary::new(Dct2dDictionary::new(16, 16), 0);
    let haar = ZeroMeanDictionary::new(Haar2dDictionary::new(16, 16), 0);
    let id = IdentityDictionary::new(256);
    assert!(dct.row_staged().is_some(), "pinned DCT must be row-staged");
    assert!(
        haar.row_staged().is_some(),
        "pinned Haar must be row-staged"
    );
    assert!(id.row_staged().is_some(), "identity must be row-staged");
    let _ = Arc::new(phi); // session stores Φ behind an Arc; keep that cheap here too
}
