//! Dynamic complement to `tepics-tidy`'s static `// tidy:alloc-free`
//! regions: a counting global allocator proves at runtime that the warm
//! solver loops and the warm serial tiled-decode path do not touch the
//! heap.
//!
//! The method is differential: run the same warm solve at two different
//! iteration budgets and assert the *allocation counts are equal*. Any
//! per-iteration allocation would scale with the budget, so equality
//! pins the loop body to zero allocations without having to whitelist
//! the (documented, one-time) allocations outside the loop. Where the
//! one-time set is exactly known — the returned coefficient vector — we
//! additionally assert the absolute count.
//!
//! The counter is thread-local, so the test harness's other threads
//! cannot perturb a measurement taken on this one.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tepics::cs::{DenseMatrix, LinearOperator};
use tepics::prelude::*;
use tepics::recovery::{Fista, Omp, SolverWorkspace};
use tepics::util::SplitMix64;

struct CountingAllocator;

thread_local! {
    /// Allocations (alloc + alloc_zeroed + realloc) observed on this
    /// thread. `const` init: no lazy allocation, no TLS destructor, so
    /// the allocator itself never recurses into the counter.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns (allocations on this thread during `f`, result).
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(Cell::get);
    let result = f();
    (ALLOCATIONS.with(Cell::get) - before, result)
}

/// A dense Gaussian sensing problem with a `k`-sparse ground truth.
fn sparse_problem(m: usize, n: usize, k: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let a = DenseMatrix::from_fn(m, n, |_, _| rng.next_gaussian() / (m as f64).sqrt());
    let mut x = vec![0.0; n];
    for i in 0..k {
        x[(i * 97) % n] = if i % 2 == 0 { 2.0 } else { -1.5 };
    }
    let y = a.apply_vec(&x);
    (a, y)
}

/// Warm FISTA iterations allocate nothing: doubling `max_iter` leaves
/// the allocation count unchanged, and that count is exactly the one
/// documented allocation (the returned coefficient vector).
#[test]
fn warm_fista_iterations_allocate_nothing() {
    let (a, y) = sparse_problem(64, 128, 8, 0xA110C);
    let mut ws = SolverWorkspace::new();
    let solver_at = |iters: usize| {
        let mut f = Fista::new();
        // Explicit step skips the (allocating, cached-elsewhere) power
        // iteration; tol 0 keeps the loop running to the full budget.
        f.lambda_ratio(0.05).max_iter(iters).tol(0.0).step(0.05);
        f
    };
    // Warm the workspace, then measure.
    solver_at(10).solve_with(&a, &y, &mut ws).unwrap();
    let (short, rec_short) = count_allocs(|| solver_at(50).solve_with(&a, &y, &mut ws).unwrap());
    let (long, rec_long) = count_allocs(|| solver_at(100).solve_with(&a, &y, &mut ws).unwrap());
    assert_eq!(
        rec_short.stats.iterations, 50,
        "short run must not stop early"
    );
    assert_eq!(
        rec_long.stats.iterations, 100,
        "long run must not stop early"
    );
    assert_eq!(
        short, long,
        "FISTA loop allocates: 50 iters cost {short} allocations, 100 iters cost {long}"
    );
    assert_eq!(
        short, 1,
        "warm FISTA solve should allocate exactly the returned coefficient vector"
    );
}

/// Warm OMP pursuit allocates nothing: doubling the atom budget leaves
/// the allocation count unchanged at exactly the returned coefficient
/// vector.
#[test]
fn warm_omp_iterations_allocate_nothing() {
    let (a, y) = sparse_problem(64, 128, 12, 0x0113B);
    let mut ws = SolverWorkspace::new();
    // Warm at the largest budget so every buffer reaches full size.
    Omp::new(8).solve_with(&a, &y, &mut ws).unwrap();
    let (small, rec_small) = count_allocs(|| Omp::new(4).solve_with(&a, &y, &mut ws).unwrap());
    let (large, rec_large) = count_allocs(|| Omp::new(8).solve_with(&a, &y, &mut ws).unwrap());
    assert_eq!(
        rec_small.stats.iterations, 4,
        "small budget must be exhausted"
    );
    assert_eq!(
        rec_large.stats.iterations, 8,
        "large budget must be exhausted"
    );
    assert_eq!(
        small, large,
        "OMP loop allocates: 4 atoms cost {small} allocations, 8 atoms cost {large}"
    );
    assert_eq!(
        small, 1,
        "warm OMP solve should allocate exactly the returned coefficient vector"
    );
}

/// Warm *fused* FISTA decode iterations allocate nothing: a full
/// decoder pass (XOR measurement × DC-pinned DCT, routed through the
/// fused one-pass kernels with workspace-donated scratch) at doubled
/// iteration budgets costs the identical number of allocations. Any
/// per-iteration heap touch inside the fused apply/adjoint — table
/// builds, row staging, dictionary scratch — would scale with the
/// budget and break the equality.
#[test]
fn warm_fused_decode_iterations_allocate_nothing() {
    let im = CompressiveImager::builder(16, 16)
        .ratio(0.4)
        .seed(0xF0_5D)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let scene = Scene::gaussian_blobs(2).render(16, 16, 3);
    let frame = im.capture(&scene);
    let mut ws = SolverWorkspace::new();
    let decode = |iters: usize, ws: &mut SolverWorkspace| {
        let mut dec = Decoder::for_frame(&frame).unwrap();
        dec.algorithm(SolverKind::Fista {
            lambda_ratio: 0.02,
            max_iter: iters,
            debias: false,
        });
        dec.reconstruct_with(&frame, ws).unwrap()
    };
    // Warm at the larger budget so every buffer reaches full size.
    decode(100, &mut ws);
    let (short, rec_short) = count_allocs(|| decode(50, &mut ws));
    let (long, rec_long) = count_allocs(|| decode(100, &mut ws));
    assert_eq!(
        rec_short.stats().iterations,
        50,
        "short run must exhaust its budget"
    );
    assert_eq!(
        rec_long.stats().iterations,
        100,
        "long run must exhaust its budget"
    );
    assert_eq!(
        short, long,
        "fused decode loop allocates: 50 iters cost {short}, 100 iters cost {long}"
    );
}

/// The warm serial tiled-decode path reaches an allocation steady
/// state: once the session's operator cache and workspaces are warm,
/// consecutive decodes of the same stream cost the identical number of
/// allocations (the per-frame outputs — reconstruction image, stats —
/// and nothing that grows with session age).
#[test]
fn warm_serial_tiled_decode_reaches_allocation_steady_state() {
    let imager = CompressiveImager::builder_for(FrameGeometry::new(40, 28))
        .tiling(TileConfig::new(16).overlap(4))
        .ratio(0.35)
        .seed(0x71D3)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    // One stream, five frames of the same scene, snapshotted after each
    // capture so the byte ranges of individual frames are known — the
    // decode session can then be fed frame-aligned chunks, the way a
    // receiver drains a live stream.
    let scene = Scene::gaussian_blobs(3).render(40, 28, 7);
    let mut enc = EncodeSession::new(imager).unwrap();
    let mut cuts = vec![0usize];
    for _ in 0..8 {
        enc.capture(&scene).unwrap();
        cuts.push(enc.to_bytes().len());
    }
    let bytes = enc.into_bytes();
    let chunk = |i: usize| &bytes[cuts[i]..cuts[i + 1]];

    let mut session = DecodeSession::new();
    // Serial: the whole decode runs on this thread, under this
    // thread's counter.
    session.threads(1);
    // Six priming frames: the first populates the operator cache and
    // solver workspaces; the rest settle the stream parser's buffer,
    // whose capacity grows amortized until its compaction threshold.
    for i in 0..6 {
        assert_eq!(session.push_bytes(chunk(i)).unwrap().len(), 1);
    }
    let (seventh, out_a) = count_allocs(|| session.push_bytes(chunk(6)).unwrap());
    let (eighth, out_b) = count_allocs(|| session.push_bytes(chunk(7)).unwrap());
    assert_eq!(
        out_a[0].reconstruction, out_b[0].reconstruction,
        "warm decodes of the same frame must stay bit-identical"
    );
    assert_eq!(
        seventh, eighth,
        "warm serial tiled decode drifts: {seventh} then {eighth} allocations"
    );
}
